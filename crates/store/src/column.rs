//! Columnar storage: one [`Column`] per attribute, stored contiguously.
//!
//! Strings are dictionary-encoded (`u32` codes + a sorted-on-demand
//! dictionary), the natural representation for the nominal attributes that
//! Charles' frequency-based cuts operate on. Nulls are tracked with a
//! validity [`Bitmap`]; predicates never match null (SQL semantics), and
//! medians/frequencies are computed over valid rows only.

use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::value::Value;
use std::sync::Arc;

/// Physical storage for a column's values.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// Finite 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary codes into [`Column::dict`].
    Str(Vec<u32>),
    /// Days since epoch.
    Date(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    pub(crate) fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }
}

/// A named, typed column with optional nulls.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
    /// Bit set ⇔ row holds a valid (non-null) value.
    validity: Bitmap,
    /// String dictionary; empty for non-string columns. Codes index into
    /// it. Behind an `Arc` so that row-range slices of a column (sharded
    /// backends) share one dictionary instead of copying it per shard.
    dict: Arc<Vec<String>>,
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        let data = match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        };
        Column {
            name: name.into(),
            data,
            validity: Bitmap::new(0),
            dict: Arc::new(Vec::new()),
        }
    }

    /// Assemble a column directly from its physical parts (disk load
    /// path). The caller must guarantee `data.len() == validity.len()`
    /// and, for string columns, that every code indexes into `dict`;
    /// the disk reader validates both before calling.
    pub(crate) fn from_parts(
        name: String,
        data: ColumnData,
        validity: Bitmap,
        dict: Arc<Vec<String>>,
    ) -> Column {
        debug_assert_eq!(data.len(), validity.len());
        Column {
            name,
            data,
            validity,
            dict,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        match self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows (including nulls).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validity bitmap (bit set ⇔ non-null).
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.len() - self.validity.count_ones()
    }

    /// Raw physical data.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The string dictionary (string columns only).
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Append a value. `None` appends a null.
    pub fn push(&mut self, value: Option<Value>) -> StoreResult<()> {
        match value {
            None => {
                self.push_physical_default();
                self.validity.push(false);
            }
            Some(v) => {
                if v.data_type() != self.data_type() {
                    return Err(StoreError::TypeMismatch {
                        column: self.name.clone(),
                        expected: self.data_type().name().into(),
                        found: v.data_type().name().into(),
                    });
                }
                match (&mut self.data, v) {
                    (ColumnData::Int(vec), Value::Int(x)) => vec.push(x),
                    (ColumnData::Float(vec), Value::Float(x)) => {
                        if x.is_nan() {
                            return Err(StoreError::Parse(format!(
                                "NaN rejected in column {:?}",
                                self.name
                            )));
                        }
                        vec.push(x)
                    }
                    (ColumnData::Date(vec), Value::Date(x)) => vec.push(x),
                    (ColumnData::Bool(vec), Value::Bool(x)) => vec.push(x),
                    (ColumnData::Str(vec), Value::Str(s)) => {
                        let code = Self::intern(Arc::make_mut(&mut self.dict), s);
                        vec.push(code);
                    }
                    _ => unreachable!("type checked above"),
                }
                self.validity.push(true);
            }
        }
        Ok(())
    }

    /// Value at row `i`, or `None` when null. Panics if out of range.
    pub fn get(&self, i: usize) -> Option<Value> {
        if !self.validity.get(i) {
            return None;
        }
        Some(match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(self.dict[v[i] as usize].clone()),
        })
    }

    /// Dictionary code at row `i` (string columns), or `None` when null.
    pub fn code(&self, i: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Str(v) if self.validity.get(i) => Some(v[i]),
            _ => None,
        }
    }

    /// Look up the dictionary code for a string, if it occurs.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict.iter().position(|d| d == s).map(|p| p as u32)
    }

    /// Intern a string into the dictionary and return its code.
    fn intern(dict: &mut Vec<String>, s: String) -> u32 {
        // Linear scan is fine: dictionaries for nominal columns are small
        // by definition (the paper treats ≲20 distinct values as the common
        // case) and interning happens only at load time.
        if let Some(pos) = dict.iter().position(|d| *d == s) {
            pos as u32
        } else {
            dict.push(s);
            (dict.len() - 1) as u32
        }
    }

    fn push_physical_default(&mut self) {
        match &mut self.data {
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Date(v) => v.push(0),
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Str(v) => v.push(0),
        }
    }

    /// Gather the numeric values of the rows selected by `sel` (skipping
    /// nulls) into `out`. The workhorse behind medians and quantiles.
    pub fn gather_f64(&self, sel: &Bitmap, out: &mut Vec<f64>) -> StoreResult<()> {
        out.clear();
        match &self.data {
            ColumnData::Int(v) => {
                for i in sel.iter_ones() {
                    if self.validity.get(i) {
                        out.push(v[i] as f64);
                    }
                }
            }
            ColumnData::Float(v) => {
                for i in sel.iter_ones() {
                    // NaN is treated as null: one NaN would otherwise poison
                    // every downstream order statistic (NaN medians, NaN cut
                    // points). `Column::push` rejects NaN, but columns built
                    // from raw parts or future load paths may carry them.
                    if self.validity.get(i) && !v[i].is_nan() {
                        out.push(v[i]);
                    }
                }
            }
            ColumnData::Date(v) => {
                for i in sel.iter_ones() {
                    if self.validity.get(i) {
                        out.push(v[i] as f64);
                    }
                }
            }
            _ => {
                return Err(StoreError::TypeMismatch {
                    column: self.name.clone(),
                    expected: "numeric".into(),
                    found: self.data_type().name().into(),
                })
            }
        }
        Ok(())
    }

    /// The sub-column covering rows `start..end`. String columns share the
    /// full dictionary (codes stay valid across slices), which is what
    /// lets a sharded backend merge per-shard frequency tables by code.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range {}",
            self.len()
        );
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
        };
        Column {
            name: self.name.clone(),
            data,
            validity: self.validity.slice(start, end),
            dict: Arc::clone(&self.dict),
        }
    }

    /// Minimum and maximum value among the selected, non-null rows.
    pub fn min_max(&self, sel: &Bitmap) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in sel.iter_ones() {
            let Some(v) = self.get(i) else { continue };
            match &min {
                None => {
                    min = Some(v.clone());
                    max = Some(v);
                }
                Some(m) => {
                    if v.try_cmp(m).map(|o| o.is_lt()).unwrap_or(false) {
                        min = Some(v.clone());
                    }
                    if let Some(mx) = &max {
                        if v.try_cmp(mx).map(|o| o.is_gt()).unwrap_or(false) {
                            max = Some(v);
                        }
                    }
                }
            }
        }
        min.zip(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(values: &[i64]) -> Column {
        let mut c = Column::new("x", DataType::Int);
        for &v in values {
            c.push(Some(Value::Int(v))).unwrap();
        }
        c
    }

    #[test]
    fn push_and_get_round_trip() {
        let c = int_col(&[5, 3, 9]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Some(Value::Int(3)));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn nulls_are_tracked() {
        let mut c = Column::new("x", DataType::Int);
        c.push(Some(Value::Int(1))).unwrap();
        c.push(None).unwrap();
        c.push(Some(Value::Int(3))).unwrap();
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(Value::Int(3)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new("x", DataType::Int);
        let err = c.push(Some(Value::str("oops"))).unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn nan_rejected_on_push() {
        let mut c = Column::new("x", DataType::Float);
        assert!(c.push(Some(Value::Float(f64::NAN))).is_err());
    }

    #[test]
    fn string_dictionary_interns() {
        let mut c = Column::new("kind", DataType::Str);
        for s in ["fluit", "jacht", "fluit", "pinas", "fluit"] {
            c.push(Some(Value::str(s))).unwrap();
        }
        assert_eq!(c.dict().len(), 3);
        assert_eq!(c.code(0), c.code(2));
        assert_eq!(c.code_of("pinas"), Some(2));
        assert_eq!(c.code_of("galjoen"), None);
        assert_eq!(c.get(3), Some(Value::str("pinas")));
    }

    #[test]
    fn gather_skips_nulls_and_unselected() {
        let mut c = Column::new("x", DataType::Int);
        for v in [Some(10), None, Some(30), Some(40)] {
            c.push(v.map(Value::Int)).unwrap();
        }
        let sel = Bitmap::from_indices(4, [0, 1, 2]);
        let mut out = Vec::new();
        c.gather_f64(&sel, &mut out).unwrap();
        assert_eq!(out, vec![10.0, 30.0]);
    }

    #[test]
    fn gather_rejects_nominal() {
        let mut c = Column::new("kind", DataType::Str);
        c.push(Some(Value::str("a"))).unwrap();
        let mut out = Vec::new();
        assert!(c.gather_f64(&Bitmap::ones(1), &mut out).is_err());
    }

    #[test]
    fn gather_skips_nan_like_null() {
        // `push` rejects NaN, so manufacture a poisoned column the way a
        // raw load path could: straight from parts. Regression test for
        // NaN medians / NaN cut points leaking out of gather_f64.
        let c = Column {
            name: "x".into(),
            data: ColumnData::Float(vec![1.0, f64::NAN, 3.0, f64::NAN, 5.0]),
            validity: Bitmap::ones(5),
            dict: Arc::new(Vec::new()),
        };
        let mut out = Vec::new();
        c.gather_f64(&Bitmap::ones(5), &mut out).unwrap();
        assert_eq!(out, vec![1.0, 3.0, 5.0]);
        let med = crate::stats::exact_median(&mut out).unwrap();
        assert_eq!(med, 3.0);
        assert!(!med.is_nan());
    }

    #[test]
    fn slice_preserves_values_nulls_and_dict() {
        let mut c = Column::new("kind", DataType::Str);
        for v in [
            Some("fluit"),
            Some("jacht"),
            None,
            Some("pinas"),
            Some("fluit"),
        ] {
            c.push(v.map(Value::str)).unwrap();
        }
        let s = c.slice(1, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(Value::str("jacht")));
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(2), Some(Value::str("pinas")));
        // Full dictionary shared (same allocation, not a copy): codes
        // agree with the parent column.
        assert_eq!(s.dict(), c.dict());
        assert!(std::ptr::eq(s.dict(), c.dict()));
        assert_eq!(s.code(2), c.code(3));
        // Degenerate slices.
        assert_eq!(c.slice(2, 2).len(), 0);
        assert_eq!(c.slice(0, c.len()).len(), c.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        int_col(&[1, 2]).slice(1, 3);
    }

    #[test]
    fn min_max_over_selection() {
        let c = int_col(&[5, 1, 9, 7]);
        let sel = Bitmap::from_indices(4, [0, 2, 3]);
        let (min, max) = c.min_max(&sel).unwrap();
        assert_eq!(min, Value::Int(5));
        assert_eq!(max, Value::Int(9));
    }

    #[test]
    fn min_max_empty_selection_is_none() {
        let c = int_col(&[1, 2]);
        assert!(c.min_max(&Bitmap::new(2)).is_none());
    }

    #[test]
    fn min_max_string_is_lexicographic() {
        let mut c = Column::new("kind", DataType::Str);
        for s in ["jacht", "fluit", "pinas"] {
            c.push(Some(Value::str(s))).unwrap();
        }
        let (min, max) = c.min_max(&Bitmap::ones(3)).unwrap();
        assert_eq!(min, Value::str("fluit"));
        assert_eq!(max, Value::str("pinas"));
    }
}
