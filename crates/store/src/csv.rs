//! Minimal CSV import/export with a typed header.
//!
//! Format: the header row is `name:type` pairs (types from
//! [`DataType::name`]); empty fields are NULL. Quoting supports the common
//! double-quote convention. This is enough to round-trip the synthetic
//! datasets and to let users feed their own extracts to the examples.

use crate::builder::TableBuilder;
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::table::Table;
use crate::value::Value;
use std::path::Path;

/// Build the positional CSV error: 1-based `line` (within the original
/// document, blank lines counted), 1-based field `column` when the
/// failure is attributable to one field.
fn csv_err(line: usize, column: Option<usize>, message: impl Into<String>) -> StoreError {
    StoreError::Csv {
        line,
        column,
        message: message.into(),
    }
}

/// Parse a CSV document (with `name:type` header) into a [`Table`].
///
/// Parse failures report their position: the 1-based line number of the
/// original document (blank lines count, though they are skipped) and,
/// when one field is to blame, the 1-based column (field index) —
/// surfaced as [`StoreError::Csv`].
pub fn read_csv_str(name: &str, text: &str) -> StoreResult<Table> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (header_no, header) = lines
        .next()
        .ok_or_else(|| StoreError::Parse("empty CSV document".into()))?;
    let header_no = header_no + 1;
    let mut builder = TableBuilder::new(name);
    let mut types = Vec::new();
    for (idx, (field, _)) in split_csv_line(header)
        .map_err(|msg| csv_err(header_no, None, msg))?
        .into_iter()
        .enumerate()
    {
        let col = Some(idx + 1);
        let (name, ty) = field.rsplit_once(':').ok_or_else(|| {
            csv_err(
                header_no,
                col,
                format!("header field {field:?} lacks :type"),
            )
        })?;
        let ty = DataType::parse(ty)
            .ok_or_else(|| csv_err(header_no, col, format!("unknown type in header: {ty:?}")))?;
        builder.add_column(name.trim(), ty);
        types.push(ty);
    }
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        let fields = split_csv_line(line).map_err(|msg| csv_err(lineno, None, msg))?;
        if fields.len() != types.len() {
            return Err(csv_err(
                lineno,
                None,
                format!("expected {} fields, found {}", types.len(), fields.len()),
            ));
        }
        let mut row: Vec<Option<Value>> = Vec::with_capacity(fields.len());
        for (idx, ((field, quoted), ty)) in fields.iter().zip(&types).enumerate() {
            // A bare empty field is NULL; a quoted empty field ("") is the
            // empty string (only meaningful for string columns).
            if field.is_empty() && !quoted {
                row.push(None);
            } else {
                let v = Value::parse_typed(field, *ty).map_err(|e| {
                    let msg = match e {
                        StoreError::Parse(m) => m,
                        other => other.to_string(),
                    };
                    csv_err(lineno, Some(idx + 1), msg)
                })?;
                row.push(Some(v));
            }
        }
        builder.push_row_opt(row)?;
    }
    Ok(builder.finish())
}

/// Read a CSV file (same `name:type` header format as [`read_csv_str`])
/// into a [`Table`]. I/O failures surface as [`StoreError::Io`] with the
/// path in the message.
pub fn read_csv_file(name: &str, path: impl AsRef<Path>) -> StoreResult<Table> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| StoreError::Io(format!("reading CSV {path:?}: {e}")))?;
    read_csv_str(name, &text)
}

/// Write a table to a CSV file (the [`write_csv_string`] format).
/// Overwrites any existing file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> StoreResult<()> {
    let path = path.as_ref();
    std::fs::write(path, write_csv_string(table))
        .map_err(|e| StoreError::Io(format!("writing CSV {path:?}: {e}")))
}

/// Serialise a table back to the same CSV format.
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&format!("{}:{}", c.name, c.ty)))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    let names = table.schema().names();
    for i in 0..table.len() {
        let fields: Vec<String> = names
            .iter()
            .map(|n| match table.value(i, n).expect("valid column") {
                None => String::new(),
                Some(v) => quote_field(&v.render()),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Split one CSV line honouring double quotes (with `""` escapes).
/// Returns each field together with whether it was quoted — needed to
/// distinguish the empty string (`""`) from NULL (bare empty field).
/// Errors are bare messages; the caller attaches the line number.
fn split_csv_line(line: &str) -> Result<Vec<(String, bool)>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut was_quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !was_quoted => {
                in_quotes = true;
                was_quoted = true;
            }
            '"' => return Err(format!("stray quote in line {line:?}")),
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), was_quoted));
                was_quoted = false;
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in {line:?}"));
    }
    fields.push((cur, was_quoted));
    Ok(fields)
}

fn quote_field(s: &str) -> String {
    if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::predicate::StorePredicate;

    const DOC: &str = "\
tonnage:int,kind:str,built:date,score:float
1000,fluit,1700-01-01,0.5
1100,jacht,1710-06-15,
,\"de, lange\",1720-01-01,2.25
";

    #[test]
    fn read_basic_document() {
        let t = read_csv_str("boats", DOC).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().arity(), 4);
        assert_eq!(t.value(0, "kind").unwrap(), Some(Value::str("fluit")));
        assert_eq!(t.value(1, "score").unwrap(), None);
        assert_eq!(t.value(2, "tonnage").unwrap(), None);
        assert_eq!(t.value(2, "kind").unwrap(), Some(Value::str("de, lange")));
    }

    #[test]
    fn round_trip() {
        let t = read_csv_str("boats", DOC).unwrap();
        let text = write_csv_string(&t);
        let t2 = read_csv_str("boats2", &text).unwrap();
        assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            for name in t.schema().names() {
                assert_eq!(
                    t.value(i, name).unwrap(),
                    t2.value(i, name).unwrap(),
                    "row {i}, column {name}"
                );
            }
        }
    }

    #[test]
    fn loaded_table_is_queryable() {
        let t = read_csv_str("boats", DOC).unwrap();
        let n = t
            .count(&StorePredicate::range(
                "tonnage",
                Value::Int(1050),
                Value::Int(1200),
                true,
            ))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(read_csv_str("t", "").is_err());
        assert!(read_csv_str("t", "a,b\n1,2\n").is_err()); // header lacks types
        assert!(read_csv_str("t", "a:int\n1,2\n").is_err()); // arity
        assert!(read_csv_str("t", "a:int\nxyz\n").is_err()); // bad literal
        assert!(read_csv_str("t", "a:blob\n1\n").is_err()); // unknown type
        assert!(read_csv_str("t", "a:str\n\"unterminated\n").is_err());
    }

    #[test]
    fn quotes_with_escapes() {
        let doc = "s:str\n\"say \"\"hi\"\"\"\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.value(0, "s").unwrap(), Some(Value::str("say \"hi\"")));
    }

    #[test]
    fn empty_string_is_distinct_from_null() {
        let doc = "s:str\n\"\"\n\n"; // quoted empty, then blank line (skipped)
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "s").unwrap(), Some(Value::str("")));
        // And a bare empty field is NULL.
        let doc = "s:str,x:int\n,1\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.value(0, "s").unwrap(), None);
        // Round trip preserves the distinction.
        let text = write_csv_string(&t);
        let t2 = read_csv_str("t2", &text).unwrap();
        assert_eq!(t2.value(0, "s").unwrap(), None);
    }

    #[test]
    fn blank_lines_skipped() {
        let doc = "a:int\n\n1\n\n2\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        // Bad literal in field 2 of (physical) line 3.
        let doc = "a:int,b:int\n1,2\n3,oops\n";
        match read_csv_str("t", doc).unwrap_err() {
            StoreError::Csv {
                line,
                column,
                message,
            } => {
                assert_eq!((line, column), (3, Some(2)));
                assert!(message.contains("oops"), "{message}");
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
        // Blank lines count toward the reported line number.
        let doc = "a:int\n\n\nbad\n";
        match read_csv_str("t", doc).unwrap_err() {
            StoreError::Csv { line, column, .. } => {
                assert_eq!((line, column), (4, Some(1)));
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
        // Arity mismatch names the line, not a column.
        let doc = "a:int,b:int\n1\n";
        match read_csv_str("t", doc).unwrap_err() {
            StoreError::Csv {
                line,
                column,
                message,
            } => {
                assert_eq!((line, column), (2, None));
                assert!(message.contains("expected 2 fields"), "{message}");
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
        // Header problems point at line 1 and the offending field.
        match read_csv_str("t", "a:int,b\n1,2\n").unwrap_err() {
            StoreError::Csv { line, column, .. } => {
                assert_eq!((line, column), (1, Some(2)));
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
        match read_csv_str("t", "a:blob\n1\n").unwrap_err() {
            StoreError::Csv { line, column, .. } => {
                assert_eq!((line, column), (1, Some(1)));
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
        // Quote errors are line-level.
        match read_csv_str("t", "a:str\n\"unterminated\n").unwrap_err() {
            StoreError::Csv { line, column, .. } => {
                assert_eq!((line, column), (2, None));
            }
            other => panic!("expected positional CSV error, got {other}"),
        }
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let t = read_csv_str("boats", DOC).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("charles-csv-test-{}.csv", std::process::id()));
        write_csv_file(&t, &path).unwrap();
        let t2 = read_csv_file("boats2", &path).unwrap();
        assert_eq!(t2.len(), t.len());
        for i in 0..t.len() {
            for name in t.schema().names() {
                assert_eq!(t.value(i, name).unwrap(), t2.value(i, name).unwrap());
            }
        }
        std::fs::remove_file(&path).unwrap();
        // Missing file → typed Io error naming the path.
        match read_csv_file("nope", &path).unwrap_err() {
            StoreError::Io(msg) => assert!(msg.contains("charles-csv-test"), "{msg}"),
            other => panic!("expected Io error, got {other}"),
        }
    }
}
