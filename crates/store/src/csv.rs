//! Minimal CSV import/export with a typed header.
//!
//! Format: the header row is `name:type` pairs (types from
//! [`DataType::name`]); empty fields are NULL. Quoting supports the common
//! double-quote convention. This is enough to round-trip the synthetic
//! datasets and to let users feed their own extracts to the examples.

use crate::builder::TableBuilder;
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::table::Table;
use crate::value::Value;

/// Parse a CSV document (with `name:type` header) into a [`Table`].
pub fn read_csv_str(name: &str, text: &str) -> StoreResult<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| StoreError::Parse("empty CSV document".into()))?;
    let mut builder = TableBuilder::new(name);
    let mut types = Vec::new();
    for (field, _) in split_csv_line(header)? {
        let (col, ty) = field
            .rsplit_once(':')
            .ok_or_else(|| StoreError::Parse(format!("header field {field:?} lacks :type")))?;
        let ty = DataType::parse(ty)
            .ok_or_else(|| StoreError::Parse(format!("unknown type in header: {ty:?}")))?;
        builder.add_column(col.trim(), ty);
        types.push(ty);
    }
    for (lineno, line) in lines.enumerate() {
        let fields = split_csv_line(line)?;
        if fields.len() != types.len() {
            return Err(StoreError::Parse(format!(
                "line {}: expected {} fields, found {}",
                lineno + 2,
                types.len(),
                fields.len()
            )));
        }
        let mut row: Vec<Option<Value>> = Vec::with_capacity(fields.len());
        for ((field, quoted), ty) in fields.iter().zip(&types) {
            // A bare empty field is NULL; a quoted empty field ("") is the
            // empty string (only meaningful for string columns).
            if field.is_empty() && !quoted {
                row.push(None);
            } else {
                row.push(Some(Value::parse_typed(field, *ty)?));
            }
        }
        builder.push_row_opt(row)?;
    }
    Ok(builder.finish())
}

/// Serialise a table back to the same CSV format.
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&format!("{}:{}", c.name, c.ty)))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    let names = table.schema().names();
    for i in 0..table.len() {
        let fields: Vec<String> = names
            .iter()
            .map(|n| match table.value(i, n).expect("valid column") {
                None => String::new(),
                Some(v) => quote_field(&v.render()),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Split one CSV line honouring double quotes (with `""` escapes).
/// Returns each field together with whether it was quoted — needed to
/// distinguish the empty string (`""`) from NULL (bare empty field).
fn split_csv_line(line: &str) -> StoreResult<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut was_quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !was_quoted => {
                in_quotes = true;
                was_quoted = true;
            }
            '"' => return Err(StoreError::Parse(format!("stray quote in line {line:?}"))),
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), was_quoted));
                was_quoted = false;
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(StoreError::Parse(format!("unterminated quote in {line:?}")));
    }
    fields.push((cur, was_quoted));
    Ok(fields)
}

fn quote_field(s: &str) -> String {
    if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::predicate::StorePredicate;

    const DOC: &str = "\
tonnage:int,kind:str,built:date,score:float
1000,fluit,1700-01-01,0.5
1100,jacht,1710-06-15,
,\"de, lange\",1720-01-01,2.25
";

    #[test]
    fn read_basic_document() {
        let t = read_csv_str("boats", DOC).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().arity(), 4);
        assert_eq!(t.value(0, "kind").unwrap(), Some(Value::str("fluit")));
        assert_eq!(t.value(1, "score").unwrap(), None);
        assert_eq!(t.value(2, "tonnage").unwrap(), None);
        assert_eq!(t.value(2, "kind").unwrap(), Some(Value::str("de, lange")));
    }

    #[test]
    fn round_trip() {
        let t = read_csv_str("boats", DOC).unwrap();
        let text = write_csv_string(&t);
        let t2 = read_csv_str("boats2", &text).unwrap();
        assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            for name in t.schema().names() {
                assert_eq!(
                    t.value(i, name).unwrap(),
                    t2.value(i, name).unwrap(),
                    "row {i}, column {name}"
                );
            }
        }
    }

    #[test]
    fn loaded_table_is_queryable() {
        let t = read_csv_str("boats", DOC).unwrap();
        let n = t
            .count(&StorePredicate::range(
                "tonnage",
                Value::Int(1050),
                Value::Int(1200),
                true,
            ))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(read_csv_str("t", "").is_err());
        assert!(read_csv_str("t", "a,b\n1,2\n").is_err()); // header lacks types
        assert!(read_csv_str("t", "a:int\n1,2\n").is_err()); // arity
        assert!(read_csv_str("t", "a:int\nxyz\n").is_err()); // bad literal
        assert!(read_csv_str("t", "a:blob\n1\n").is_err()); // unknown type
        assert!(read_csv_str("t", "a:str\n\"unterminated\n").is_err());
    }

    #[test]
    fn quotes_with_escapes() {
        let doc = "s:str\n\"say \"\"hi\"\"\"\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.value(0, "s").unwrap(), Some(Value::str("say \"hi\"")));
    }

    #[test]
    fn empty_string_is_distinct_from_null() {
        let doc = "s:str\n\"\"\n\n"; // quoted empty, then blank line (skipped)
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "s").unwrap(), Some(Value::str("")));
        // And a bare empty field is NULL.
        let doc = "s:str,x:int\n,1\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.value(0, "s").unwrap(), None);
        // Round trip preserves the distinction.
        let text = write_csv_string(&t);
        let t2 = read_csv_str("t2", &text).unwrap();
        assert_eq!(t2.value(0, "s").unwrap(), None);
    }

    #[test]
    fn blank_lines_skipped() {
        let doc = "a:int\n\n1\n\n2\n";
        let t = read_csv_str("t", doc).unwrap();
        assert_eq!(t.len(), 2);
    }
}
