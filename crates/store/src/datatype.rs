//! Logical data types supported by the store.
//!
//! The paper's examples use integers ("tonnage"), reals, dates
//! ("departure_date", handled like numerics for median purposes), nominal
//! strings ("type_of_boat") and implicitly booleans. CUT's median rule
//! distinguishes exactly two families (paper §4.1): *ordered numerics*
//! (integers, reals, dates — arithmetic median) and *nominal* values
//! (frequency / alphabetical ordering).

use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float. NaNs are rejected at ingestion.
    Float,
    /// Dictionary-encoded UTF-8 string (nominal attribute).
    Str,
    /// Date stored as days since 1970-01-01 (ordered like a numeric).
    Date,
    /// Boolean (treated as a two-value nominal type).
    Bool,
}

impl DataType {
    /// Whether values of this type have a meaningful arithmetic median.
    ///
    /// Per the paper: "For integers, reals, or dates, we use the arithmetic
    /// median. For nominal values, we have to make more arbitrary choices."
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }

    /// Whether this is a nominal (categorical) type.
    pub fn is_nominal(self) -> bool {
        !self.is_numeric()
    }

    /// Whether values of this type and `other` belong to the same
    /// comparison family: the numerics (`Int`, `Float`, `Date`) compare
    /// with each other, every other type only with itself. This is the
    /// type-level counterpart of [`crate::Value::comparable_with`] — a
    /// literal whose type fails this test against its column's type can
    /// never match a row, which is what the SDL static analyzer flags as
    /// a type mismatch before any evaluation runs.
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }

    /// Short lowercase name used in schemas and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
            DataType::Bool => "bool",
        }
    }

    /// Parse a type name as produced by [`DataType::name`].
    pub fn parse(name: &str) -> Option<DataType> {
        match name.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" | "i64" => Some(DataType::Int),
            "float" | "real" | "double" | "f64" => Some(DataType::Float),
            "str" | "string" | "text" | "varchar" => Some(DataType::Str),
            "date" => Some(DataType::Date),
            "bool" | "boolean" => Some(DataType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification_matches_paper() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Date.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn nominal_is_complement_of_numeric() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
        ] {
            assert_ne!(t.is_numeric(), t.is_nominal());
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
        ] {
            assert_eq!(DataType::parse(t.name()), Some(t));
        }
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn display_uses_short_name() {
        assert_eq!(DataType::Date.to_string(), "date");
    }

    #[test]
    fn comparability_is_family_wise() {
        assert!(DataType::Int.comparable_with(DataType::Float));
        assert!(DataType::Float.comparable_with(DataType::Date));
        assert!(DataType::Str.comparable_with(DataType::Str));
        assert!(!DataType::Str.comparable_with(DataType::Int));
        assert!(!DataType::Bool.comparable_with(DataType::Str));
        assert!(!DataType::Bool.comparable_with(DataType::Int));
    }
}
