//! Read-only memory mapping of a `.charles` file (the `mmap` feature).
//!
//! The format was designed for this access pattern from the start
//! (`docs/FORMAT.md`): every structure is located by absolute offsets
//! recorded in the footer, all integers are little-endian at naturally
//! aligned offsets within their segments, and nothing requires a
//! sequential scan — so a mapping needs no decode pass at all, and
//! segment fetches become plain slices of the map. No format version
//! bump is needed or taken.
//!
//! On unix the mapping is a `PROT_READ`/`MAP_PRIVATE` `mmap(2)` issued
//! directly (the workspace is dependency-free, so the raw syscall is
//! declared here rather than pulled from a libc crate). Elsewhere the
//! type degrades to a buffered whole-file read with the same interface —
//! correct, just without the paging win.
//!
//! Safety perimeter: the map is created once from a just-opened file and
//! sliced only through [`Mmap::slice`], which bounds-checks against the
//! length captured at map time. A file that shrinks *while mapped* can
//! still fault on access (that is inherent to mmap on every platform);
//! the reader therefore validates all offsets against the mapped length
//! at open time, so ordinary corruption and truncation surface as typed
//! errors before any mapped access happens.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only mapping of an entire file.
pub(super) struct Mmap {
    inner: Inner,
}

enum Inner {
    /// A live `mmap(2)` mapping (unix). `ptr` is dangling when `len == 0`
    /// — a zero-length mapping is invalid (`EINVAL`), so none is made.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Whole-file buffer fallback for platforms without `mmap` (and for
    /// zero-length files, vacuously).
    #[allow(dead_code)]
    Buffered(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never written or
// remapped after construction, and `Drop` is the sole unmap site — the
// owning thread can hand the value to another thread without any
// thread-affine state left behind.
unsafe impl Send for Mmap {}
// SAFETY: all access after construction is read-only (`as_slice` /
// `slice` take `&self` and the kernel mapping is immutable), so
// concurrent shared views are no different from sharing a `&[u8]`.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `len` bytes of `file` (its full current length, per the
    /// caller's `stat`). Fails with the OS error if the kernel refuses
    /// the mapping.
    #[cfg(unix)]
    pub(super) fn map(file: &File, len: u64) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Buffered(Vec::new()),
            });
        }
        // SAFETY: a fresh anonymous-address read-only private mapping of
        // a file descriptor we own; the result is checked against
        // MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            inner: Inner::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    /// Buffered fallback: read the whole file once up front.
    #[cfg(not(unix))]
    pub(super) fn map(file: &File, len: u64) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Buffered(buf),
        })
    }

    /// The mapped bytes.
    pub(super) fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len describe the live mapping created in
            // `map`; it stays valid until Drop.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Buffered(buf) => buf,
        }
    }

    /// `len` bytes at absolute file offset `offset`, or `None` when the
    /// range leaves the mapping (checked arithmetic — a crafted offset
    /// near `u64::MAX` must not wrap into an accepted range).
    pub(super) fn slice(&self, offset: u64, len: u64) -> Option<&[u8]> {
        let bytes = self.as_slice();
        let start = usize::try_from(offset).ok()?;
        let len = usize::try_from(len).ok()?;
        let end = start.checked_add(len)?;
        bytes.get(start..end)
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: unmapping exactly the region `map` created; the
            // struct is being dropped, so no slice can outlive it (the
            // borrow checker ties `as_slice` lifetimes to `&self`).
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => "mapped",
            Inner::Buffered(_) => "buffered",
        };
        write!(f, "Mmap[{kind}, {} bytes]", self.as_slice().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("charles-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn maps_and_slices_with_bounds_checks() {
        let p = tmp("basic", b"0123456789");
        let f = File::open(&p).unwrap();
        let m = Mmap::map(&f, 10).unwrap();
        assert_eq!(m.as_slice(), b"0123456789");
        assert_eq!(m.slice(3, 4).unwrap(), b"3456");
        assert_eq!(m.slice(0, 10).unwrap(), b"0123456789");
        assert!(m.slice(0, 11).is_none());
        assert!(m.slice(10, 1).is_none());
        assert!(m.slice(u64::MAX, 2).is_none(), "offset wrap");
        assert!(m.slice(2, u64::MAX).is_none(), "length wrap");
        assert_eq!(m.slice(10, 0).unwrap(), b"");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn zero_length_file_maps_as_empty() {
        let p = tmp("empty", b"");
        let f = File::open(&p).unwrap();
        let m = Mmap::map(&f, 0).unwrap();
        assert_eq!(m.as_slice(), b"");
        assert!(m.slice(0, 1).is_none());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn drop_unmaps_without_invalidating_other_maps() {
        let p = tmp("drop", &vec![0xAB; 8192]);
        let f = File::open(&p).unwrap();
        let a = Mmap::map(&f, 8192).unwrap();
        {
            let b = Mmap::map(&f, 8192).unwrap();
            assert_eq!(b.as_slice()[4096], 0xAB);
        } // b unmapped here
        assert_eq!(a.as_slice()[8191], 0xAB, "a survives b's munmap");
        std::fs::remove_file(&p).unwrap();
    }
}
