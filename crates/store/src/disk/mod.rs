//! Persistent on-disk columnar storage: the `.charles` file format.
//!
//! Every dataset in this repo used to die with the process — `read_csv_str`
//! only parses in-memory strings, so serving a long-lived advisory server
//! meant re-ingesting and re-building columns on every boot. This module
//! gives tables a durable form: a versioned binary **columnar** layout
//! (the natural shape for Charles' workload of counts and medians over
//! single columns) written once by [`write_table`] and served lazily by
//! [`DiskTable`], which fetches a column's segments on first touch via
//! positioned reads instead of materialising the whole file.
//!
//! The byte-level layout is specified in `docs/FORMAT.md`; the constants
//! below are the single source of truth the spec documents. In brief:
//!
//! ```text
//! [header: magic, version, endianness marker]
//! [schema block: table name, row count, column names + types]
//! [per column: validity bitmap words · typed fixed-width data · string dictionary]
//! [footer: per-segment (offset, length, CRC-32) index · whole-file CRC-32]
//! [trailer: footer offset · trailing magic]
//! ```
//!
//! Integrity is layered: the header is validated on open, the footer
//! carries its own CRC (checked on open), each segment carries a CRC
//! (checked when that segment is first loaded), and a whole-file CRC
//! covers everything before the footer ([`DiskTable::verify`] checks it
//! on demand — it is not checked on open, because reading the entire
//! file eagerly would defeat lazy column loading). All failures surface
//! as typed [`StoreError::Corrupt`] / [`StoreError::Io`] values, never
//! panics.
//!
//! The positioned-read design was chosen so segment fetches could later
//! be served from an OS memory mapping without touching the format —
//! and the `mmap` cargo feature now does exactly that:
//! `DiskTable::open_mmap` maps the whole file read-only (a raw
//! `mmap(2)` call on unix, a buffered fallback elsewhere) and hands out
//! segment **slices** of the mapping instead of `pread` copies, with the
//! same open-time validation and the same typed errors. No format
//! version bump: the bytes are identical, only the access path differs.

#[cfg(feature = "mmap")]
mod mmap;
pub mod reader;
pub mod writer;

pub use reader::DiskTable;
pub use writer::{write_table, StreamWriter};

use crate::error::{StoreError, StoreResult};

/// Leading magic: identifies a `.charles` file from its first 8 bytes.
pub const MAGIC: [u8; 8] = *b"CHARLES\0";
/// Trailing magic: the last 8 bytes of a complete file. A missing
/// trailer is the cheapest truncation detector.
pub const TRAILER_MAGIC: [u8; 8] = *b"CHARLEND";
/// Format version written by this build and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness marker: written as a little-endian `u32`. A reader that
/// decodes it as anything else is byte-swapping and must reject the file.
pub const ENDIAN_MARKER: u32 = 0x1A2B_3C4D;
/// Size of the fixed header (magic + version + endianness marker).
pub const HEADER_LEN: u64 = 16;
/// Size of the fixed trailer (footer offset + trailing magic).
pub const TRAILER_LEN: u64 = 16;

/// On-disk type codes, one per [`crate::DataType`].
pub(crate) fn type_code(ty: crate::DataType) -> u8 {
    match ty {
        crate::DataType::Int => 0,
        crate::DataType::Float => 1,
        crate::DataType::Str => 2,
        crate::DataType::Date => 3,
        crate::DataType::Bool => 4,
    }
}

/// Inverse of [`type_code`].
pub(crate) fn type_from_code(code: u8) -> Option<crate::DataType> {
    match code {
        0 => Some(crate::DataType::Int),
        1 => Some(crate::DataType::Float),
        2 => Some(crate::DataType::Str),
        3 => Some(crate::DataType::Date),
        4 => Some(crate::DataType::Bool),
        _ => None,
    }
}

/// Location and checksum of one segment within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegmentRef {
    /// Absolute byte offset of the segment's first byte.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
    /// CRC-32 (IEEE) of the segment bytes.
    pub crc: u32,
}

/// The three segments of one column (dictionary only for string columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ColumnSegments {
    pub validity: SegmentRef,
    pub data: SegmentRef,
    pub dict: Option<SegmentRef>,
}

/// CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`, init and
/// xor-out `0xFFFFFFFF`) — the ubiquitous checksum of zip/png/ethernet,
/// implemented here because the build has no dependencies to lean on.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u32;
            for _ in 0..8 {
                s = (s >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(s & 1)));
            }
        }
        self.state = s;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot convenience.
    pub fn of(bytes: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(bytes);
        c.finish()
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// Flatten an I/O error into the crate error type, with context. An
/// unexpected EOF means the file ends before its structure says it
/// should — that is corruption (truncation), not a transport fault.
pub(crate) fn io_err(context: &str, e: std::io::Error) -> StoreError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StoreError::Corrupt(format!("{context}: file truncated ({e})"))
    } else {
        StoreError::Io(format!("{context}: {e}"))
    }
}

/// A little-endian byte cursor over an in-memory block (schema block and
/// footer are small, so they are read whole and decoded with this).
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8], what: &'static str) -> ByteReader<'a> {
        ByteReader { buf, pos: 0, what }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "{} truncated: wanted {n} bytes at offset {}, only {} left",
                self.what,
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> StoreResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("{}: non-UTF-8 string payload", self.what)))
    }
}

/// Little-endian append-only encoder (mirror of [`ByteReader`]).
#[derive(Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32 ("123456789") check value.
        assert_eq!(Crc32::of(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::of(b""), 0);
        // Incremental == one-shot.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn type_codes_round_trip() {
        use crate::DataType;
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
        ] {
            assert_eq!(type_from_code(type_code(ty)), Some(ty));
        }
        assert_eq!(type_from_code(5), None);
        assert_eq!(type_from_code(255), None);
    }

    #[test]
    fn byte_reader_writer_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.string("tonnage");
        w.string("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.string().unwrap(), "tonnage");
        assert_eq!(r.string().unwrap(), "");
        assert_eq!(r.remaining(), 0);
        // Over-read is a typed error, not a panic.
        assert!(matches!(r.u8(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn byte_reader_rejects_bad_utf8_and_overlong_strings() {
        let mut w = ByteWriter::new();
        w.u32(3);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0xFD]);
        let mut r = ByteReader::new(&bytes, "test");
        assert!(matches!(r.string(), Err(StoreError::Corrupt(_))));
        // Declared length exceeds the buffer.
        let mut w = ByteWriter::new();
        w.u32(1000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert!(matches!(r.string(), Err(StoreError::Corrupt(_))));
    }
}
