//! Lazy reading of `.charles` files: [`DiskTable`].
//!
//! Opening a file reads only its fixed header, the schema block, and the
//! footer index — a few hundred bytes regardless of data size. Column
//! segments stay on disk until an operation first touches the column;
//! then the validity bitmap, data vector and (for strings) dictionary
//! are fetched with positioned reads, CRC-checked, decoded into a
//! regular in-memory [`Column`], and cached for every later access.
//! Untouched columns are never read, so advising on 3 attributes of a
//! 50-column file pays for 3 columns of I/O.

use super::{
    io_err, type_from_code, ByteReader, ColumnSegments, Crc32, SegmentRef, ENDIAN_MARKER,
    FORMAT_VERSION, HEADER_LEN, MAGIC, TRAILER_LEN, TRAILER_MAGIC,
};
use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::table::Table;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

/// A file handle that supports concurrent positioned reads.
///
/// On unix this is `pread(2)` via `FileExt::read_exact_at` — no shared
/// cursor, so concurrent first-touch loads of different columns never
/// contend. Elsewhere a mutex serialises a seek+read pair with the same
/// observable behaviour.
#[derive(Debug)]
struct SharedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl SharedFile {
    fn new(file: File) -> SharedFile {
        #[cfg(unix)]
        {
            SharedFile { file }
        }
        #[cfg(not(unix))]
        {
            SharedFile {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    /// Fill `buf` from the absolute file offset `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

/// Fixed-width byte size of one row of a column's data segment.
fn data_width(ty: DataType) -> u64 {
    match ty {
        DataType::Int | DataType::Float | DataType::Date => 8,
        DataType::Str => 4,
        DataType::Bool => 1,
    }
}

/// A [`Table`]-equivalent backend served lazily from a `.charles` file.
///
/// Columns are loaded (and CRC-verified) on first touch and cached for
/// the lifetime of the handle; the decoded column is the same in-memory
/// [`Column`] a [`crate::TableBuilder`] would have produced, and every
/// `Backend` operation runs the same code as [`Table`] — so advisor
/// output over a `DiskTable` is **bitwise identical** to advisor output
/// over the table that was written (pinned by `tests/backend_contract.rs`
/// and `tests/disk_persistence.rs` at the workspace root).
///
/// To compose with the sharded backend, materialise and split:
/// `ShardedTable::from_table(&disk.to_table()?, n)`.
#[derive(Debug)]
pub struct DiskTable {
    name: String,
    schema: Schema,
    rows: usize,
    path: PathBuf,
    file: SharedFile,
    segments: Vec<ColumnSegments>,
    cells: Vec<OnceLock<Result<Column, StoreError>>>,
    /// Whole-file CRC recorded in the footer; checked by [`DiskTable::verify`].
    file_crc: u32,
    /// First byte of the footer = end of the checksummed region.
    footer_start: u64,
    scans: AtomicU64,
    counts: AtomicU64,
    medians: AtomicU64,
}

impl DiskTable {
    /// Open a `.charles` file, validating its header, trailer, footer
    /// checksum and segment index — but reading **no column data** yet.
    ///
    /// Structural faults (wrong magic, unsupported version, foreign
    /// endianness, truncation, out-of-bounds segments, checksum
    /// mismatches) surface as [`StoreError::Corrupt`]; transport faults
    /// as [`StoreError::Io`]. Never panics on malformed input.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<DiskTable> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| io_err(&format!("opening {path:?}"), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err(&format!("stat {path:?}"), e))?
            .len();
        let file = SharedFile::new(file);

        // The smallest well-formed file: header + schema length prefix +
        // empty schema + empty footer (just the file CRC) + footer CRC +
        // trailer.
        if file_len < HEADER_LEN + 4 + 4 + 4 + TRAILER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file is {file_len} bytes — too short to be a .charles file"
            )));
        }

        // Header.
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| io_err("reading header", e))?;
        if header[0..8] != MAGIC {
            return Err(StoreError::Corrupt(
                "bad magic: not a .charles file".to_string(),
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
            )));
        }
        let endian = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if endian != ENDIAN_MARKER {
            return Err(StoreError::Corrupt(format!(
                "endianness marker mismatch (read 0x{endian:08X}, want 0x{ENDIAN_MARKER:08X})"
            )));
        }

        // Trailer → footer location.
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut trailer, file_len - TRAILER_LEN)
            .map_err(|e| io_err("reading trailer", e))?;
        if trailer[8..16] != TRAILER_MAGIC {
            return Err(StoreError::Corrupt(
                "trailing magic missing: file is truncated or overwritten".to_string(),
            ));
        }
        let footer_start = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_end = file_len - TRAILER_LEN; // footer bytes + footer CRC
                                                 // Checked arithmetic throughout: every field here is untrusted
                                                 // bytes, and an overflow panic would break the no-panics
                                                 // contract (a crafted footer_start near u64::MAX must land in
                                                 // Corrupt like any other out-of-bounds value).
        if footer_start < HEADER_LEN + 4
            || footer_start
                .checked_add(4)
                .is_none_or(|end| end > footer_end)
        {
            return Err(StoreError::Corrupt(format!(
                "footer offset {footer_start} out of bounds (file is {file_len} bytes)"
            )));
        }

        // Footer region, integrity-checked by its own CRC.
        let mut footer = vec![0u8; (footer_end - footer_start) as usize];
        file.read_exact_at(&mut footer, footer_start)
            .map_err(|e| io_err("reading footer", e))?;
        let (footer_body, crc_bytes) = footer.split_at(footer.len() - 4);
        let footer_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if Crc32::of(footer_body) != footer_crc {
            return Err(StoreError::Corrupt("footer checksum mismatch".to_string()));
        }

        // Schema block.
        let mut len_buf = [0u8; 4];
        file.read_exact_at(&mut len_buf, HEADER_LEN)
            .map_err(|e| io_err("reading schema length", e))?;
        let schema_len = u32::from_le_bytes(len_buf) as u64;
        let data_start = HEADER_LEN + 4 + schema_len;
        if data_start > footer_start {
            return Err(StoreError::Corrupt(format!(
                "schema block of {schema_len} bytes overruns the footer"
            )));
        }
        let mut schema_bytes = vec![0u8; schema_len as usize];
        file.read_exact_at(&mut schema_bytes, HEADER_LEN + 4)
            .map_err(|e| io_err("reading schema block", e))?;
        let (name, rows, schema) = decode_schema(&schema_bytes)?;

        // Footer entries, validated against the schema and file bounds.
        let segments = decode_footer_entries(footer_body, &schema)?;
        // The file CRC is the footer body's last field (after the entries;
        // decode_footer_entries guarantees exactly 4 bytes remain).
        let file_crc = u32::from_le_bytes(footer_body[footer_body.len() - 4..].try_into().unwrap());
        // Expected segment lengths, in checked u64 arithmetic: a crafted
        // row count near u64::MAX must be rejected, not overflow.
        let want_validity = (rows as u64).div_ceil(64).checked_mul(8);
        for (i, c) in schema.columns().iter().enumerate() {
            let segs = &segments[i];
            let width = data_width(c.ty);
            check_segment(&segs.validity, data_start, footer_start, || {
                format!("column {:?} validity", c.name)
            })?;
            if want_validity != Some(segs.validity.len) {
                return Err(StoreError::Corrupt(format!(
                    "column {:?}: validity segment is {} bytes, wrong for {rows} rows",
                    c.name, segs.validity.len,
                )));
            }
            check_segment(&segs.data, data_start, footer_start, || {
                format!("column {:?} data", c.name)
            })?;
            if (rows as u64).checked_mul(width) != Some(segs.data.len) {
                return Err(StoreError::Corrupt(format!(
                    "column {:?}: data segment is {} bytes, wrong for {rows} rows of {:?}",
                    c.name, segs.data.len, c.ty
                )));
            }
            match (&segs.dict, c.ty == DataType::Str) {
                (Some(d), true) => check_segment(d, data_start, footer_start, || {
                    format!("column {:?} dictionary", c.name)
                })?,
                (None, false) => {}
                (Some(_), false) => {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: dictionary segment on a non-string column",
                        c.name
                    )))
                }
                (None, true) => {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: string column without a dictionary segment",
                        c.name
                    )))
                }
            }
        }

        let cells = (0..schema.arity()).map(|_| OnceLock::new()).collect();
        Ok(DiskTable {
            name,
            schema,
            rows,
            path,
            file,
            segments,
            cells,
            file_crc,
            footer_start,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        })
    }

    /// Table name recorded in the file.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The path the table was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Selection of all rows.
    pub fn all_rows(&self) -> Bitmap {
        Bitmap::ones(self.rows)
    }

    /// How many columns have been materialised so far — the observable
    /// half of the lazy-loading contract (tests assert that touching one
    /// column loads one column).
    pub fn columns_loaded(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }

    /// Column accessor by name, loading (and caching) it on first touch.
    pub fn column(&self, name: &str) -> StoreResult<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))?;
        match self.cells[idx].get_or_init(|| self.load_column(idx)) {
            Ok(col) => Ok(col),
            Err(e) => Err(e.clone()),
        }
    }

    /// Load every column and assemble an in-memory [`Table`] — the entry
    /// point for composing with [`crate::ShardedTable`]
    /// (`ShardedTable::from_table(&disk.to_table()?, n)`).
    pub fn to_table(&self) -> StoreResult<Table> {
        let mut columns = Vec::with_capacity(self.schema.arity());
        for c in self.schema.columns() {
            columns.push(self.column(&c.name)?.clone());
        }
        Ok(Table::from_parts(
            self.name.clone(),
            self.schema.clone(),
            columns,
        ))
    }

    /// Verify the whole-file checksum (everything before the footer)
    /// against the value recorded in the footer. Streams the file in
    /// chunks; loads no columns. This is the offline integrity check —
    /// per-segment CRCs already guard every lazy load.
    pub fn verify(&self) -> StoreResult<()> {
        let mut crc = Crc32::new();
        let mut offset = 0u64;
        let mut buf = vec![0u8; 64 * 1024];
        while offset < self.footer_start {
            let n = ((self.footer_start - offset) as usize).min(buf.len());
            self.file
                .read_exact_at(&mut buf[..n], offset)
                .map_err(|e| io_err("verifying file checksum", e))?;
            crc.update(&buf[..n]);
            offset += n as u64;
        }
        if crc.finish() != self.file_crc {
            return Err(StoreError::Corrupt(format!(
                "whole-file checksum mismatch (computed 0x{:08X}, footer records 0x{:08X})",
                crc.finish(),
                self.file_crc
            )));
        }
        Ok(())
    }

    /// Fetch one segment's bytes and check its CRC.
    fn read_segment(&self, seg: &SegmentRef, what: impl Fn() -> String) -> StoreResult<Vec<u8>> {
        let mut buf = vec![0u8; seg.len as usize];
        self.file
            .read_exact_at(&mut buf, seg.offset)
            .map_err(|e| io_err(&format!("reading {}", what()), e))?;
        if Crc32::of(&buf) != seg.crc {
            return Err(StoreError::Corrupt(format!(
                "{}: segment checksum mismatch",
                what()
            )));
        }
        Ok(buf)
    }

    /// Decode column `idx` from its segments (the slow path behind the
    /// `OnceLock`; runs at most once per column per handle).
    fn load_column(&self, idx: usize) -> Result<Column, StoreError> {
        let meta = &self.schema.columns()[idx];
        let segs = &self.segments[idx];

        let validity_bytes = self.read_segment(&segs.validity, || {
            format!("column {:?} validity", meta.name)
        })?;
        let words: Vec<u64> = validity_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let validity = Bitmap::from_words(words, self.rows).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "column {:?}: validity bitmap has bits set beyond row {}",
                meta.name, self.rows
            ))
        })?;

        let data_bytes =
            self.read_segment(&segs.data, || format!("column {:?} data", meta.name))?;
        let data = match meta.ty {
            DataType::Int => ColumnData::Int(decode_i64s(&data_bytes)),
            DataType::Date => ColumnData::Date(decode_i64s(&data_bytes)),
            DataType::Float => ColumnData::Float(
                data_bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            ),
            DataType::Str => ColumnData::Str(
                data_bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            DataType::Bool => {
                let mut vals = Vec::with_capacity(data_bytes.len());
                for (i, &b) in data_bytes.iter().enumerate() {
                    match b {
                        0 => vals.push(false),
                        1 => vals.push(true),
                        other => {
                            return Err(StoreError::Corrupt(format!(
                                "column {:?}: row {i} holds byte {other}, not a boolean",
                                meta.name
                            )))
                        }
                    }
                }
                ColumnData::Bool(vals)
            }
        };

        let dict = match &segs.dict {
            None => Arc::new(Vec::new()),
            Some(seg) => {
                let bytes =
                    self.read_segment(seg, || format!("column {:?} dictionary", meta.name))?;
                let mut r = ByteReader::new(&bytes, "dictionary segment");
                let count = r.u32()? as usize;
                let mut dict = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    dict.push(r.string()?);
                }
                if r.remaining() != 0 {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: trailing bytes after dictionary",
                        meta.name
                    )));
                }
                Arc::new(dict)
            }
        };

        // Every valid row's code must index the dictionary (null rows
        // carry a placeholder code that is never dereferenced).
        if let ColumnData::Str(codes) = &data {
            for i in validity.iter_ones() {
                if codes[i] as usize >= dict.len() {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: row {i} has dictionary code {} but the dictionary holds {} entries",
                        meta.name, codes[i], dict.len()
                    )));
                }
            }
        }

        Ok(Column::from_parts(meta.name.clone(), data, validity, dict))
    }
}

fn decode_i64s(bytes: &[u8]) -> Vec<i64> {
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Parse the schema block: (table name, row count, schema).
fn decode_schema(bytes: &[u8]) -> StoreResult<(String, usize, Schema)> {
    let mut r = ByteReader::new(bytes, "schema block");
    let name = r.string()?;
    let rows = r.u64()?;
    let rows = usize::try_from(rows)
        .map_err(|_| StoreError::Corrupt(format!("row count {rows} exceeds this platform")))?;
    let arity = r.u32()? as usize;
    let mut schema = Schema::new();
    for _ in 0..arity {
        let col_name = r.string()?;
        let code = r.u8()?;
        let ty = type_from_code(code).ok_or_else(|| {
            StoreError::Corrupt(format!("column {col_name:?}: unknown type code {code}"))
        })?;
        schema
            .add(&col_name, ty)
            .map_err(|e| StoreError::Corrupt(format!("invalid schema in file: {e}")))?;
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(
            "trailing bytes after schema block".to_string(),
        ));
    }
    Ok((name, rows, schema))
}

/// Parse the footer body (everything before the footer CRC): one entry
/// per schema column, then the whole-file CRC (decoded by the caller).
fn decode_footer_entries(body: &[u8], schema: &Schema) -> StoreResult<Vec<ColumnSegments>> {
    let mut r = ByteReader::new(body, "footer");
    let seg = |r: &mut ByteReader| -> StoreResult<SegmentRef> {
        Ok(SegmentRef {
            offset: r.u64()?,
            len: r.u64()?,
            crc: r.u32()?,
        })
    };
    let mut out = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        let validity = seg(&mut r)?;
        let data = seg(&mut r)?;
        let dict = match r.u8()? {
            0 => None,
            1 => Some(seg(&mut r)?),
            other => {
                return Err(StoreError::Corrupt(format!(
                    "footer: invalid dictionary flag {other}"
                )))
            }
        };
        out.push(ColumnSegments {
            validity,
            data,
            dict,
        });
    }
    if r.remaining() != 4 {
        return Err(StoreError::Corrupt(format!(
            "footer size mismatch: {} bytes left after the column index, want 4 (file CRC)",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Bounds-check one segment against the data region.
fn check_segment(
    seg: &SegmentRef,
    data_start: u64,
    footer_start: u64,
    what: impl Fn() -> String,
) -> StoreResult<()> {
    let end = seg.offset.checked_add(seg.len);
    if seg.offset < data_start || end.is_none() || end.unwrap() > footer_start {
        return Err(StoreError::Corrupt(format!(
            "{}: segment [{}, +{}) outside the data region [{data_start}, {footer_start})",
            what(),
            seg.offset,
            seg.len
        )));
    }
    Ok(())
}

// The `Backend` implementation is expanded from the shared
// `impl_dense_backend` macro — the exact same code `Table` expands, so
// advisor output over a `DiskTable` is bitwise identical to advisor
// output over the written table by construction. The only difference
// is that `column()` may fault with `Io`/`Corrupt` on first touch.
crate::backend::impl_dense_backend!(DiskTable);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::builder::TableBuilder;
    use crate::disk::write_table;
    use crate::predicate::StorePredicate;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique temp path per call; callers remove it when done.
    fn tmp_path(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        std::env::temp_dir().join(format!(
            "charles-disk-{tag}-{}-{n}.charles",
            std::process::id()
        ))
    }

    /// A fixture exercising every datatype, nulls in every column, the
    /// empty string, and dictionary reuse.
    fn fixture() -> Table {
        let mut b = TableBuilder::new("mixed");
        b.add_column("i", DataType::Int)
            .add_column("f", DataType::Float)
            .add_column("s", DataType::Str)
            .add_column("d", DataType::Date)
            .add_column("b", DataType::Bool);
        let strs = ["fluit", "", "jacht", "fluit", "de, lange"];
        for k in 0..97i64 {
            let row: Vec<Option<Value>> = vec![
                (k % 7 != 3).then_some(Value::Int(k * 31 % 50 - 10)),
                (k % 5 != 2).then_some(Value::Float((k as f64) * 0.25 - 3.0)),
                (k % 11 != 5).then(|| Value::str(strs[(k % 5) as usize])),
                (k % 13 != 7).then_some(Value::Date(k * 372 % 1000)),
                (k % 3 != 1).then_some(Value::Bool(k % 2 == 0)),
            ];
            b.push_row_opt(row).unwrap();
        }
        b.finish()
    }

    fn assert_tables_equal(a: &dyn Backend, b: &Table) {
        assert_eq!(a.row_count(), b.len());
        assert_eq!(a.schema(), b.schema());
        for c in b.schema().columns() {
            assert_eq!(
                a.not_null(&c.name).unwrap(),
                b.not_null(&c.name).unwrap(),
                "validity of {}",
                c.name
            );
        }
    }

    #[test]
    fn round_trip_preserves_every_cell() {
        let t = fixture();
        let path = tmp_path("roundtrip");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.name(), "mixed");
        assert_eq!(d.len(), t.len());
        assert_tables_equal(&d, &t);
        for c in t.schema().columns() {
            let dc = d.column(&c.name).unwrap();
            let tc = t.column(&c.name).unwrap();
            for i in 0..t.len() {
                assert_eq!(dc.get(i), tc.get(i), "cell ({i}, {})", c.name);
            }
        }
        // Whole-file checksum holds.
        d.verify().unwrap();
        // And the materialised table matches too.
        let mat = d.to_table().unwrap();
        for c in t.schema().columns() {
            for i in 0..t.len() {
                assert_eq!(mat.value(i, &c.name).unwrap(), t.value(i, &c.name).unwrap());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn operations_match_table_bitwise() {
        let t = fixture();
        let path = tmp_path("ops");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        let pred = StorePredicate::and(vec![
            StorePredicate::range("i", Value::Int(-5), Value::Int(30), true),
            StorePredicate::set("s", vec![Value::str("fluit"), Value::str("")]),
        ]);
        assert_eq!(d.eval(&pred).unwrap(), t.eval(&pred).unwrap());
        assert_eq!(d.count(&pred).unwrap(), t.count(&pred).unwrap());
        let sel = t.eval(&pred).unwrap();
        assert_eq!(d.median("f", &sel).unwrap(), t.median("f", &sel).unwrap());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                d.quantile("i", &sel, q).unwrap(),
                t.quantile("i", &sel, q).unwrap()
            );
        }
        assert_eq!(
            d.sampled_median("i", &sel, 17, 42).unwrap(),
            t.sampled_median("i", &sel, 17, 42).unwrap()
        );
        assert_eq!(d.min_max("d", &sel).unwrap(), t.min_max("d", &sel).unwrap());
        let (dm, dv) = d.mean_and_var("f", &sel).unwrap().unwrap();
        let (tm, tv) = t.mean_and_var("f", &sel).unwrap().unwrap();
        assert_eq!((dm.to_bits(), dv.to_bits()), (tm.to_bits(), tv.to_bits()));
        assert_eq!(
            d.next_above("i", &sel, &Value::Int(0)).unwrap(),
            t.next_above("i", &sel, &Value::Int(0)).unwrap()
        );
        let all = t.all_rows();
        let (df, dd) = d.frequencies("s", &all).unwrap();
        let (tf, td) = t.frequencies("s", &all).unwrap();
        assert_eq!((df.entries(), dd), (tf.entries(), td));
        let (bf, _) = d.frequencies("b", &all).unwrap();
        let (tbf, _) = t.frequencies("b", &all).unwrap();
        assert_eq!(bf.entries(), tbf.entries());
        for col in ["i", "f", "s", "d", "b"] {
            assert_eq!(
                d.distinct_count(col, &all).unwrap(),
                t.distinct_count(col, &all).unwrap(),
                "distinct {col}"
            );
        }
        // Error parity: unknown column, type mismatches.
        assert!(matches!(
            d.median("s", &all),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            d.frequencies("i", &all),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            d.column("nope"),
            Err(StoreError::UnknownColumn(_))
        ));
        // Counter discipline matches Table's.
        d.reset_stats();
        t.reset_stats();
        let _ = d.count(&pred).unwrap();
        let _ = t.count(&pred).unwrap();
        let _ = d.median("i", &all).unwrap();
        let _ = t.median("i", &all).unwrap();
        assert_eq!(d.stats(), t.stats());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn columns_load_lazily_on_first_touch() {
        let t = fixture();
        let path = tmp_path("lazy");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.columns_loaded(), 0, "open must not read column data");
        let pred = StorePredicate::range("i", Value::Int(0), Value::Int(10), true);
        let _ = d.eval(&pred).unwrap();
        assert_eq!(d.columns_loaded(), 1, "one predicate, one column");
        let _ = d.median("i", &d.all_rows()).unwrap();
        assert_eq!(d.columns_loaded(), 1, "re-touch is cached");
        let _ = d.not_null("s").unwrap();
        assert_eq!(d.columns_loaded(), 2);
    }

    #[test]
    fn nan_float_bits_round_trip_and_stay_null_like() {
        // `TableBuilder` rejects NaN, but raw load paths can carry them;
        // the format must preserve the exact bits and the loaded column
        // must keep treating NaN as null in order statistics.
        let quiet_nan = f64::from_bits(0x7FF8_0000_0000_0001);
        let data = ColumnData::Float(vec![1.0, quiet_nan, 3.0, f64::NEG_INFINITY]);
        let col = Column::from_parts("x".into(), data, Bitmap::ones(4), Arc::new(Vec::new()));
        let mut schema = Schema::new();
        schema.add("x", DataType::Float).unwrap();
        let t = Table::from_parts("poisoned".into(), schema, vec![col]);
        let path = tmp_path("nan");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        let loaded = d.column("x").unwrap();
        match loaded.data() {
            ColumnData::Float(v) => {
                assert_eq!(v[1].to_bits(), quiet_nan.to_bits(), "NaN payload bits");
                assert_eq!(v[3], f64::NEG_INFINITY);
            }
            other => panic!("wrong column data: {other:?}"),
        }
        // NaN skipped like null, exactly as the in-memory column does.
        assert_eq!(
            d.median("x", &d.all_rows()).unwrap(),
            t.median("x", &t.all_rows()).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_table_round_trips() {
        let mut b = TableBuilder::new("empty");
        b.add_column("a", DataType::Int)
            .add_column("s", DataType::Str);
        let t = b.finish();
        let path = tmp_path("empty");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        assert_eq!(d.count(&StorePredicate::True).unwrap(), 0);
        assert_eq!(d.median("a", &Bitmap::new(0)).unwrap(), None);
        d.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_headers_are_rejected_with_typed_errors() {
        let t = fixture();
        let path = tmp_path("header");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let reject = |bytes: &[u8], what: &str| {
            std::fs::write(&path, bytes).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(msg)) => msg,
                Err(other) => panic!("{what}: expected Corrupt, got {other}"),
                Ok(_) => panic!("{what}: corrupt file accepted"),
            }
        };

        // Wrong magic.
        let mut bad = pristine.clone();
        bad[0] = b'X';
        assert!(reject(&bad, "magic").contains("magic"));
        // Unsupported version.
        let mut bad = pristine.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(reject(&bad, "version").contains("version 99"));
        // Foreign endianness.
        let mut bad = pristine.clone();
        let mut marker = bad[12..16].to_vec();
        marker.reverse();
        bad[12..16].copy_from_slice(&marker);
        assert!(reject(&bad, "endian").contains("endianness"));
        // Missing trailer magic (classic truncation).
        let truncated = &pristine[..pristine.len() - 3];
        assert!(reject(truncated, "trailer").contains("truncated"));
        // Hard truncations at many points: always a typed error, never a
        // panic, never success.
        for keep in [0, 7, 16, 40, pristine.len() / 2, pristine.len() - 17] {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                Err(other) => panic!("truncation at {keep}: unexpected error {other}"),
                Ok(_) => panic!("truncation at {keep} accepted"),
            }
        }
        // Footer byte flip → footer checksum mismatch.
        let mut bad = pristine.clone();
        let flip_at = bad.len() - (TRAILER_LEN as usize) - 6;
        bad[flip_at] ^= 0xFF;
        assert!(reject(&bad, "footer").contains("footer checksum"));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inverted_or_oversized_footer_offsets_are_corrupt_not_panics() {
        // Regression for the corrupt-trailer bounds bug: the footer
        // length `footer_end - footer_start` used to be computed (and
        // fed to `vec![0u8; ...]`) straight from untrusted trailer
        // bytes, so a trailer claiming `footer_start > footer_end`
        // subtracted past zero — a panic in debug builds, an absurd
        // allocation attempt in release. Every such trailer must land
        // in `Corrupt` before any allocation.
        let t = fixture();
        let path = tmp_path("inverted-footer");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let file_len = pristine.len() as u64;
        let footer_end = file_len - TRAILER_LEN;
        let trailer_at = pristine.len() - TRAILER_LEN as usize;

        let reject_offset = |footer_start: u64, what: &str| {
            let mut bad = pristine.clone();
            bad[trailer_at..trailer_at + 8].copy_from_slice(&footer_start.to_le_bytes());
            std::fs::write(&path, &bad).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(msg)) => {
                    assert!(msg.contains("out of bounds"), "{what}: {msg}")
                }
                Err(other) => panic!("{what}: expected Corrupt, got {other}"),
                Ok(_) => panic!("{what}: bogus footer offset accepted"),
            }
        };

        // footer_start one past footer_end: the subtraction would go
        // negative.
        reject_offset(footer_end + 1, "start just past end");
        // footer_start at the very end of the file.
        reject_offset(file_len, "start at file length");
        // footer_start leaving no room for the footer's own CRC.
        reject_offset(footer_end - 3, "no room for footer CRC");
        // footer_start inside the header (underruns the schema block).
        reject_offset(0, "start at zero");
        reject_offset(HEADER_LEN + 3, "start inside the length prefix");
        // Length-flavoured extremes: offsets so large the implied
        // footer length (or `footer_start + 4`) wraps u64.
        reject_offset(u64::MAX, "u64::MAX");
        reject_offset(u64::MAX - 4, "u64::MAX - 4");

        // Single byte flips in the trailer offset field — the cheapest
        // real-world corruption — must also never panic: whatever the
        // flipped offset implies, the outcome is a typed error (Corrupt
        // for bad bounds, or a checksum/decode error when the offset
        // stays in range but points at the wrong bytes).
        for bit in 0..64 {
            let mut bad = pristine.clone();
            bad[trailer_at + bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &bad).unwrap();
            match DiskTable::open(&path) {
                Ok(_) => panic!("bit flip {bit} in footer offset accepted"),
                Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                Err(other) => panic!("bit flip {bit}: unexpected error {other}"),
            }
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crafted_extreme_fields_cannot_overflow() {
        // Adversarial values near u64::MAX in untrusted fields must land
        // in Corrupt via checked arithmetic — never an overflow panic
        // (debug builds trap unchecked adds/muls).
        let t = fixture();
        let path = tmp_path("overflow");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Trailer pointing the footer at u64::MAX - 3 (footer_start + 4
        // would overflow if unchecked).
        let mut bad = pristine.clone();
        let off = bad.len() - TRAILER_LEN as usize;
        bad[off..off + 8].copy_from_slice(&(u64::MAX - 3).to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            DiskTable::open(&path),
            Err(StoreError::Corrupt(_))
        ));

        // Schema block claiming ~u64::MAX rows (rows * width would
        // overflow if unchecked). Rebuild the schema block with the
        // huge row count and re-point the length prefix, keeping the
        // real footer bytes valid by refreshing the footer CRC is not
        // needed — the row-count check runs after footer decode, so a
        // simpler route: patch the row count in place (it sits after
        // the table-name string inside the schema block) and accept
        // that the footer CRC still matches (the footer is untouched).
        let mut bad = pristine.clone();
        let name_len = u32::from_le_bytes(bad[20..24].try_into().unwrap()) as usize;
        let rows_at = 24 + name_len;
        bad[rows_at..rows_at + 8].copy_from_slice(&(u64::MAX - 1).to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        match DiskTable::open(&path) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("wrong for"), "{msg}")
            }
            other => panic!("huge row count accepted or panicked upstream: {other:?}"),
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_segments_fail_on_load_and_verify() {
        let t = fixture();
        let path = tmp_path("segment");
        write_table(&t, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte in the first column's data region (safely past
        // header + schema block; the validity words of 97 rows are 16
        // bytes, so offset HEADER+4+schema+20 lands in column data).
        let schema_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let poke = 20 + schema_len + 20;
        bytes[poke] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let d = DiskTable::open(&path).unwrap(); // header/footer still fine
                                                 // Touching the damaged column reports a checksum mismatch…
        let damaged = d
            .eval(&StorePredicate::range(
                "i",
                Value::Int(0),
                Value::Int(10),
                true,
            ))
            .unwrap_err();
        assert!(
            matches!(&damaged, StoreError::Corrupt(m) if m.contains("checksum")),
            "{damaged}"
        );
        // …and the error is sticky (cached, not retried into a panic).
        assert!(d.column("i").is_err());
        // Whole-file verification catches it too, without loading.
        let d2 = DiskTable::open(&path).unwrap();
        assert!(
            matches!(d2.verify(), Err(StoreError::Corrupt(m)) if m.contains("whole-file")),
            "verify must fail"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opening_a_non_charles_file_is_a_typed_error() {
        let path = tmp_path("notcharles");
        std::fs::write(&path, b"tonnage:int\n1000\n").unwrap();
        assert!(matches!(
            DiskTable::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
        // Missing file → Io, with the path in the message.
        assert!(matches!(DiskTable::open(&path), Err(StoreError::Io(_))));
    }
}
