//! Lazy reading of `.charles` files: [`DiskTable`].
//!
//! Opening a file reads only its fixed header, the schema block, and the
//! footer index — a few hundred bytes regardless of data size. Column
//! segments stay on disk until an operation first touches the column;
//! then the validity bitmap, data vector and (for strings) dictionary
//! are fetched with positioned reads, CRC-checked, decoded into a
//! regular in-memory [`Column`], and cached for every later access.
//! Untouched columns are never read, so advising on 3 attributes of a
//! 50-column file pays for 3 columns of I/O.

#[cfg(feature = "mmap")]
use super::mmap::Mmap;
use super::{
    io_err, type_from_code, ByteReader, ColumnSegments, Crc32, SegmentRef, ENDIAN_MARKER,
    FORMAT_VERSION, HEADER_LEN, MAGIC, TRAILER_LEN, TRAILER_MAGIC,
};
use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::table::Table;
use std::borrow::Cow;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

/// A file handle that supports concurrent positioned reads.
///
/// On unix this is `pread(2)` via `FileExt::read_exact_at` — no shared
/// cursor, so concurrent first-touch loads of different columns never
/// contend. Elsewhere a mutex serialises a seek+read pair with the same
/// observable behaviour.
#[derive(Debug)]
struct SharedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl SharedFile {
    fn new(file: File) -> SharedFile {
        #[cfg(unix)]
        {
            SharedFile { file }
        }
        #[cfg(not(unix))]
        {
            SharedFile {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    /// Fill `buf` from the absolute file offset `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

/// Where the bytes come from: the `pread` seam every fetch goes through.
///
/// [`DiskTable::open`] uses positioned reads against the file handle;
/// [`DiskTable::open_mmap`] (feature `mmap`) serves the same byte ranges
/// as slices of one read-only mapping. All structural validation runs
/// identically over both — only [`Source::read_exact_at`] (copies) vs
/// [`DiskTable::segment_bytes`] (borrows when mapped) differs.
#[derive(Debug)]
enum Source {
    /// Buffered positioned reads (`pread(2)` on unix).
    File(SharedFile),
    /// One read-only mapping of the whole file.
    #[cfg(feature = "mmap")]
    Mapped(Mmap),
}

impl Source {
    /// Fill `buf` from the absolute file offset `offset`. A range that
    /// leaves a mapped file reports `UnexpectedEof`, exactly like a
    /// short `pread` — so callers' corruption handling is shared.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        match self {
            Source::File(f) => f.read_exact_at(buf, offset),
            #[cfg(feature = "mmap")]
            Source::Mapped(m) => match m.slice(offset, buf.len() as u64) {
                Some(src) => {
                    buf.copy_from_slice(src);
                    Ok(())
                }
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "range outside the mapped file",
                )),
            },
        }
    }
}

/// Fixed-width byte size of one row of a column's data segment.
fn data_width(ty: DataType) -> u64 {
    match ty {
        DataType::Int | DataType::Float | DataType::Date => 8,
        DataType::Str => 4,
        DataType::Bool => 1,
    }
}

/// A [`Table`]-equivalent backend served lazily from a `.charles` file.
///
/// Columns are loaded (and CRC-verified) on first touch and cached for
/// the lifetime of the handle; the decoded column is the same in-memory
/// [`Column`] a [`crate::TableBuilder`] would have produced, and every
/// `Backend` operation runs the same code as [`Table`] — so advisor
/// output over a `DiskTable` is **bitwise identical** to advisor output
/// over the table that was written (pinned by `tests/backend_contract.rs`
/// and `tests/disk_persistence.rs` at the workspace root).
///
/// To compose with the sharded backend, materialise and split:
/// `ShardedTable::from_table(&disk.to_table()?, n)`.
#[derive(Debug)]
pub struct DiskTable {
    name: String,
    schema: Schema,
    rows: usize,
    path: PathBuf,
    source: Source,
    segments: Vec<ColumnSegments>,
    cells: Vec<OnceLock<Result<Column, StoreError>>>,
    /// Whole-file CRC recorded in the footer; checked by [`DiskTable::verify`].
    file_crc: u32,
    /// First byte of the footer = end of the checksummed region.
    footer_start: u64,
    scans: AtomicU64,
    counts: AtomicU64,
    medians: AtomicU64,
}

impl DiskTable {
    /// Open a `.charles` file, validating its header, trailer, footer
    /// checksum and segment index — but reading **no column data** yet.
    ///
    /// Structural faults (wrong magic, unsupported version, foreign
    /// endianness, truncation, out-of-bounds segments, checksum
    /// mismatches) surface as [`StoreError::Corrupt`]; transport faults
    /// as [`StoreError::Io`]. Never panics on malformed input.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<DiskTable> {
        let (path, file, file_len) = open_file(path.as_ref())?;
        DiskTable::open_with(path, Source::File(SharedFile::new(file)), file_len)
    }

    /// Open a `.charles` file through one read-only memory mapping of
    /// the whole file: segment fetches become **slices of the mapping**
    /// (no read syscalls, no buffer copies; the OS pages data in on
    /// demand and can evict it under pressure), while validation,
    /// laziness, CRC checks and error behaviour are identical to
    /// [`DiskTable::open`] — pinned by the mmap rows of
    /// `tests/backend_contract.rs`. Same format, no version bump; see
    /// `docs/FORMAT.md`.
    ///
    /// On non-unix platforms this falls back to one buffered read of
    /// the whole file (correct, not lazy).
    #[cfg(feature = "mmap")]
    pub fn open_mmap(path: impl AsRef<Path>) -> StoreResult<DiskTable> {
        let (path, file, file_len) = open_file(path.as_ref())?;
        let map =
            Mmap::map(&file, file_len).map_err(|e| io_err(&format!("mapping {path:?}"), e))?;
        DiskTable::open_with(path, Source::Mapped(map), file_len)
    }

    /// True when this handle serves segments from a memory mapping.
    #[cfg(feature = "mmap")]
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, Source::Mapped(_))
    }

    /// Shared open path: validate header, trailer, footer and segment
    /// index against `file_len`, reading no column data.
    fn open_with(path: PathBuf, source: Source, file_len: u64) -> StoreResult<DiskTable> {
        let file = source;
        // The smallest well-formed file: header + schema length prefix +
        // empty schema + empty footer (just the file CRC) + footer CRC +
        // trailer.
        if file_len < HEADER_LEN + 4 + 4 + 4 + TRAILER_LEN {
            return Err(StoreError::Corrupt(format!(
                "file is {file_len} bytes — too short to be a .charles file"
            )));
        }

        // Header.
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| io_err("reading header", e))?;
        if header[0..8] != MAGIC {
            return Err(StoreError::Corrupt(
                "bad magic: not a .charles file".to_string(),
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
            )));
        }
        let endian = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if endian != ENDIAN_MARKER {
            return Err(StoreError::Corrupt(format!(
                "endianness marker mismatch (read 0x{endian:08X}, want 0x{ENDIAN_MARKER:08X})"
            )));
        }

        // Trailer → footer location.
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut trailer, file_len - TRAILER_LEN)
            .map_err(|e| io_err("reading trailer", e))?;
        if trailer[8..16] != TRAILER_MAGIC {
            return Err(StoreError::Corrupt(
                "trailing magic missing: file is truncated or overwritten".to_string(),
            ));
        }
        let footer_start = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_end = file_len - TRAILER_LEN; // footer bytes + footer CRC
                                                 // Checked arithmetic throughout: every field here is untrusted
                                                 // bytes, and an overflow panic would break the no-panics
                                                 // contract (a crafted footer_start near u64::MAX must land in
                                                 // Corrupt like any other out-of-bounds value).
        if footer_start < HEADER_LEN + 4
            || footer_start
                .checked_add(4)
                .is_none_or(|end| end > footer_end)
        {
            return Err(StoreError::Corrupt(format!(
                "footer offset {footer_start} out of bounds (file is {file_len} bytes)"
            )));
        }

        // Footer region, integrity-checked by its own CRC.
        let mut footer = vec![0u8; (footer_end - footer_start) as usize];
        file.read_exact_at(&mut footer, footer_start)
            .map_err(|e| io_err("reading footer", e))?;
        let (footer_body, crc_bytes) = footer.split_at(footer.len() - 4);
        let footer_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if Crc32::of(footer_body) != footer_crc {
            return Err(StoreError::Corrupt("footer checksum mismatch".to_string()));
        }

        // Schema block.
        let mut len_buf = [0u8; 4];
        file.read_exact_at(&mut len_buf, HEADER_LEN)
            .map_err(|e| io_err("reading schema length", e))?;
        let schema_len = u32::from_le_bytes(len_buf) as u64;
        let data_start = HEADER_LEN + 4 + schema_len;
        if data_start > footer_start {
            return Err(StoreError::Corrupt(format!(
                "schema block of {schema_len} bytes overruns the footer"
            )));
        }
        let mut schema_bytes = vec![0u8; schema_len as usize];
        file.read_exact_at(&mut schema_bytes, HEADER_LEN + 4)
            .map_err(|e| io_err("reading schema block", e))?;
        let (name, rows, schema) = decode_schema(&schema_bytes)?;

        // Footer entries, validated against the schema and file bounds.
        let segments = decode_footer_entries(footer_body, &schema)?;
        // The file CRC is the footer body's last field (after the entries;
        // decode_footer_entries guarantees exactly 4 bytes remain).
        let file_crc = u32::from_le_bytes(footer_body[footer_body.len() - 4..].try_into().unwrap());
        // Expected segment lengths, in checked u64 arithmetic: a crafted
        // row count near u64::MAX must be rejected, not overflow.
        let want_validity = (rows as u64).div_ceil(64).checked_mul(8);
        for (i, c) in schema.columns().iter().enumerate() {
            let segs = &segments[i];
            let width = data_width(c.ty);
            check_segment(&segs.validity, data_start, footer_start, || {
                format!("column {:?} validity", c.name)
            })?;
            if want_validity != Some(segs.validity.len) {
                return Err(StoreError::Corrupt(format!(
                    "column {:?}: validity segment is {} bytes, wrong for {rows} rows",
                    c.name, segs.validity.len,
                )));
            }
            check_segment(&segs.data, data_start, footer_start, || {
                format!("column {:?} data", c.name)
            })?;
            if (rows as u64).checked_mul(width) != Some(segs.data.len) {
                return Err(StoreError::Corrupt(format!(
                    "column {:?}: data segment is {} bytes, wrong for {rows} rows of {:?}",
                    c.name, segs.data.len, c.ty
                )));
            }
            match (&segs.dict, c.ty == DataType::Str) {
                (Some(d), true) => check_segment(d, data_start, footer_start, || {
                    format!("column {:?} dictionary", c.name)
                })?,
                (None, false) => {}
                (Some(_), false) => {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: dictionary segment on a non-string column",
                        c.name
                    )))
                }
                (None, true) => {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: string column without a dictionary segment",
                        c.name
                    )))
                }
            }
        }

        let cells = (0..schema.arity()).map(|_| OnceLock::new()).collect();
        Ok(DiskTable {
            name,
            schema,
            rows,
            path,
            source: file,
            segments,
            cells,
            file_crc,
            footer_start,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        })
    }

    /// Table name recorded in the file.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The path the table was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Selection of all rows.
    pub fn all_rows(&self) -> Bitmap {
        Bitmap::ones(self.rows)
    }

    /// How many columns have been materialised so far — the observable
    /// half of the lazy-loading contract (tests assert that touching one
    /// column loads one column).
    pub fn columns_loaded(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }

    /// Column accessor by name, loading (and caching) it on first touch.
    pub fn column(&self, name: &str) -> StoreResult<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))?;
        match self.cells[idx].get_or_init(|| self.load_column(idx)) {
            Ok(col) => Ok(col),
            Err(e) => Err(e.clone()),
        }
    }

    /// Load every column and assemble an in-memory [`Table`] — the entry
    /// point for composing with [`crate::ShardedTable`]
    /// (`ShardedTable::from_table(&disk.to_table()?, n)`).
    pub fn to_table(&self) -> StoreResult<Table> {
        let mut columns = Vec::with_capacity(self.schema.arity());
        for c in self.schema.columns() {
            columns.push(self.column(&c.name)?.clone());
        }
        Ok(Table::from_parts(
            self.name.clone(),
            self.schema.clone(),
            columns,
        ))
    }

    /// Verify the whole-file checksum (everything before the footer)
    /// against the value recorded in the footer. Streams the file in
    /// chunks; loads no columns. This is the offline integrity check —
    /// per-segment CRCs already guard every lazy load.
    pub fn verify(&self) -> StoreResult<()> {
        let mut crc = Crc32::new();
        let mut offset = 0u64;
        let mut buf = vec![0u8; 64 * 1024];
        while offset < self.footer_start {
            let n = ((self.footer_start - offset) as usize).min(buf.len());
            self.source
                .read_exact_at(&mut buf[..n], offset)
                .map_err(|e| io_err("verifying file checksum", e))?;
            crc.update(&buf[..n]);
            offset += n as u64;
        }
        if crc.finish() != self.file_crc {
            return Err(StoreError::Corrupt(format!(
                "whole-file checksum mismatch (computed 0x{:08X}, footer records 0x{:08X})",
                crc.finish(),
                self.file_crc
            )));
        }
        Ok(())
    }

    /// Fetch one segment's bytes and check its CRC. From a mapped file
    /// this is a borrowed slice of the mapping (zero copies); from a
    /// file handle it is one positioned read into a fresh buffer.
    fn read_segment(
        &self,
        seg: &SegmentRef,
        what: impl Fn() -> String,
    ) -> StoreResult<Cow<'_, [u8]>> {
        let bytes: Cow<'_, [u8]> = match &self.source {
            Source::File(f) => {
                let mut buf = vec![0u8; seg.len as usize];
                f.read_exact_at(&mut buf, seg.offset)
                    .map_err(|e| io_err(&format!("reading {}", what()), e))?;
                Cow::Owned(buf)
            }
            #[cfg(feature = "mmap")]
            Source::Mapped(m) => {
                // Open-time bounds checks make this infallible for a
                // file that has not shrunk since; stay defensive anyway.
                Cow::Borrowed(m.slice(seg.offset, seg.len).ok_or_else(|| {
                    StoreError::Corrupt(format!("{}: segment outside the mapped file", what()))
                })?)
            }
        };
        if Crc32::of(&bytes) != seg.crc {
            return Err(StoreError::Corrupt(format!(
                "{}: segment checksum mismatch",
                what()
            )));
        }
        Ok(bytes)
    }

    /// Decode column `idx` from its segments (the slow path behind the
    /// `OnceLock`; runs at most once per column per handle).
    fn load_column(&self, idx: usize) -> Result<Column, StoreError> {
        let meta = &self.schema.columns()[idx];
        let segs = &self.segments[idx];

        let validity_bytes = self.read_segment(&segs.validity, || {
            format!("column {:?} validity", meta.name)
        })?;
        let words: Vec<u64> = validity_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let validity = Bitmap::from_words(words, self.rows).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "column {:?}: validity bitmap has bits set beyond row {}",
                meta.name, self.rows
            ))
        })?;

        let data_bytes =
            self.read_segment(&segs.data, || format!("column {:?} data", meta.name))?;
        let data = match meta.ty {
            DataType::Int => ColumnData::Int(decode_i64s(&data_bytes)),
            DataType::Date => ColumnData::Date(decode_i64s(&data_bytes)),
            DataType::Float => ColumnData::Float(
                data_bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            ),
            DataType::Str => ColumnData::Str(
                data_bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            DataType::Bool => {
                let mut vals = Vec::with_capacity(data_bytes.len());
                for (i, &b) in data_bytes.iter().enumerate() {
                    match b {
                        0 => vals.push(false),
                        1 => vals.push(true),
                        other => {
                            return Err(StoreError::Corrupt(format!(
                                "column {:?}: row {i} holds byte {other}, not a boolean",
                                meta.name
                            )))
                        }
                    }
                }
                ColumnData::Bool(vals)
            }
        };

        let dict = match &segs.dict {
            None => Arc::new(Vec::new()),
            Some(seg) => {
                let bytes =
                    self.read_segment(seg, || format!("column {:?} dictionary", meta.name))?;
                let mut r = ByteReader::new(&bytes, "dictionary segment");
                let count = r.u32()? as usize;
                let mut dict = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    dict.push(r.string()?);
                }
                if r.remaining() != 0 {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: trailing bytes after dictionary",
                        meta.name
                    )));
                }
                Arc::new(dict)
            }
        };

        // Every valid row's code must index the dictionary (null rows
        // carry a placeholder code that is never dereferenced).
        if let ColumnData::Str(codes) = &data {
            for i in validity.iter_ones() {
                if codes[i] as usize >= dict.len() {
                    return Err(StoreError::Corrupt(format!(
                        "column {:?}: row {i} has dictionary code {} but the dictionary holds {} entries",
                        meta.name, codes[i], dict.len()
                    )));
                }
            }
        }

        Ok(Column::from_parts(meta.name.clone(), data, validity, dict))
    }
}

/// Open `path` and stat its length (shared by both open paths).
fn open_file(path: &Path) -> StoreResult<(PathBuf, File, u64)> {
    let path = path.to_path_buf();
    let file = File::open(&path).map_err(|e| io_err(&format!("opening {path:?}"), e))?;
    let file_len = file
        .metadata()
        .map_err(|e| io_err(&format!("stat {path:?}"), e))?
        .len();
    Ok((path, file, file_len))
}

fn decode_i64s(bytes: &[u8]) -> Vec<i64> {
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Parse the schema block: (table name, row count, schema).
fn decode_schema(bytes: &[u8]) -> StoreResult<(String, usize, Schema)> {
    let mut r = ByteReader::new(bytes, "schema block");
    let name = r.string()?;
    let rows = r.u64()?;
    let rows = usize::try_from(rows)
        .map_err(|_| StoreError::Corrupt(format!("row count {rows} exceeds this platform")))?;
    let arity = r.u32()? as usize;
    let mut schema = Schema::new();
    for _ in 0..arity {
        let col_name = r.string()?;
        let code = r.u8()?;
        let ty = type_from_code(code).ok_or_else(|| {
            StoreError::Corrupt(format!("column {col_name:?}: unknown type code {code}"))
        })?;
        schema
            .add(&col_name, ty)
            .map_err(|e| StoreError::Corrupt(format!("invalid schema in file: {e}")))?;
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(
            "trailing bytes after schema block".to_string(),
        ));
    }
    Ok((name, rows, schema))
}

/// Parse the footer body (everything before the footer CRC): one entry
/// per schema column, then the whole-file CRC (decoded by the caller).
fn decode_footer_entries(body: &[u8], schema: &Schema) -> StoreResult<Vec<ColumnSegments>> {
    let mut r = ByteReader::new(body, "footer");
    let seg = |r: &mut ByteReader| -> StoreResult<SegmentRef> {
        Ok(SegmentRef {
            offset: r.u64()?,
            len: r.u64()?,
            crc: r.u32()?,
        })
    };
    let mut out = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        let validity = seg(&mut r)?;
        let data = seg(&mut r)?;
        let dict = match r.u8()? {
            0 => None,
            1 => Some(seg(&mut r)?),
            other => {
                return Err(StoreError::Corrupt(format!(
                    "footer: invalid dictionary flag {other}"
                )))
            }
        };
        out.push(ColumnSegments {
            validity,
            data,
            dict,
        });
    }
    if r.remaining() != 4 {
        return Err(StoreError::Corrupt(format!(
            "footer size mismatch: {} bytes left after the column index, want 4 (file CRC)",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Bounds-check one segment against the data region.
fn check_segment(
    seg: &SegmentRef,
    data_start: u64,
    footer_start: u64,
    what: impl Fn() -> String,
) -> StoreResult<()> {
    let end = seg.offset.checked_add(seg.len);
    if seg.offset < data_start || end.is_none() || end.unwrap() > footer_start {
        return Err(StoreError::Corrupt(format!(
            "{}: segment [{}, +{}) outside the data region [{data_start}, {footer_start})",
            what(),
            seg.offset,
            seg.len
        )));
    }
    Ok(())
}

// The `Backend` implementation is expanded from the shared
// `impl_dense_backend` macro — the exact same code `Table` expands, so
// advisor output over a `DiskTable` is bitwise identical to advisor
// output over the written table by construction. The only difference
// is that `column()` may fault with `Io`/`Corrupt` on first touch.
crate::backend::impl_dense_backend!(DiskTable);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::builder::TableBuilder;
    use crate::disk::write_table;
    use crate::predicate::StorePredicate;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique temp path per call; callers remove it when done.
    fn tmp_path(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        std::env::temp_dir().join(format!(
            "charles-disk-{tag}-{}-{n}.charles",
            std::process::id()
        ))
    }

    /// A fixture exercising every datatype, nulls in every column, the
    /// empty string, and dictionary reuse.
    fn fixture() -> Table {
        let mut b = TableBuilder::new("mixed");
        b.add_column("i", DataType::Int)
            .add_column("f", DataType::Float)
            .add_column("s", DataType::Str)
            .add_column("d", DataType::Date)
            .add_column("b", DataType::Bool);
        let strs = ["fluit", "", "jacht", "fluit", "de, lange"];
        for k in 0..97i64 {
            let row: Vec<Option<Value>> = vec![
                (k % 7 != 3).then_some(Value::Int(k * 31 % 50 - 10)),
                (k % 5 != 2).then_some(Value::Float((k as f64) * 0.25 - 3.0)),
                (k % 11 != 5).then(|| Value::str(strs[(k % 5) as usize])),
                (k % 13 != 7).then_some(Value::Date(k * 372 % 1000)),
                (k % 3 != 1).then_some(Value::Bool(k % 2 == 0)),
            ];
            b.push_row_opt(row).unwrap();
        }
        b.finish()
    }

    fn assert_tables_equal(a: &dyn Backend, b: &Table) {
        assert_eq!(a.row_count(), b.len());
        assert_eq!(a.schema(), b.schema());
        for c in b.schema().columns() {
            assert_eq!(
                a.not_null(&c.name).unwrap(),
                b.not_null(&c.name).unwrap(),
                "validity of {}",
                c.name
            );
        }
    }

    #[test]
    fn round_trip_preserves_every_cell() {
        let t = fixture();
        let path = tmp_path("roundtrip");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.name(), "mixed");
        assert_eq!(d.len(), t.len());
        assert_tables_equal(&d, &t);
        for c in t.schema().columns() {
            let dc = d.column(&c.name).unwrap();
            let tc = t.column(&c.name).unwrap();
            for i in 0..t.len() {
                assert_eq!(dc.get(i), tc.get(i), "cell ({i}, {})", c.name);
            }
        }
        // Whole-file checksum holds.
        d.verify().unwrap();
        // And the materialised table matches too.
        let mat = d.to_table().unwrap();
        for c in t.schema().columns() {
            for i in 0..t.len() {
                assert_eq!(mat.value(i, &c.name).unwrap(), t.value(i, &c.name).unwrap());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn operations_match_table_bitwise() {
        let t = fixture();
        let path = tmp_path("ops");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        let pred = StorePredicate::and(vec![
            StorePredicate::range("i", Value::Int(-5), Value::Int(30), true),
            StorePredicate::set("s", vec![Value::str("fluit"), Value::str("")]),
        ]);
        assert_eq!(d.eval(&pred).unwrap(), t.eval(&pred).unwrap());
        assert_eq!(d.count(&pred).unwrap(), t.count(&pred).unwrap());
        let sel = t.eval(&pred).unwrap();
        assert_eq!(d.median("f", &sel).unwrap(), t.median("f", &sel).unwrap());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                d.quantile("i", &sel, q).unwrap(),
                t.quantile("i", &sel, q).unwrap()
            );
        }
        assert_eq!(
            d.sampled_median("i", &sel, 17, 42).unwrap(),
            t.sampled_median("i", &sel, 17, 42).unwrap()
        );
        assert_eq!(d.min_max("d", &sel).unwrap(), t.min_max("d", &sel).unwrap());
        let (dm, dv) = d.mean_and_var("f", &sel).unwrap().unwrap();
        let (tm, tv) = t.mean_and_var("f", &sel).unwrap().unwrap();
        assert_eq!((dm.to_bits(), dv.to_bits()), (tm.to_bits(), tv.to_bits()));
        assert_eq!(
            d.next_above("i", &sel, &Value::Int(0)).unwrap(),
            t.next_above("i", &sel, &Value::Int(0)).unwrap()
        );
        let all = t.all_rows();
        let (df, dd) = d.frequencies("s", &all).unwrap();
        let (tf, td) = t.frequencies("s", &all).unwrap();
        assert_eq!((df.entries(), dd), (tf.entries(), td));
        let (bf, _) = d.frequencies("b", &all).unwrap();
        let (tbf, _) = t.frequencies("b", &all).unwrap();
        assert_eq!(bf.entries(), tbf.entries());
        for col in ["i", "f", "s", "d", "b"] {
            assert_eq!(
                d.distinct_count(col, &all).unwrap(),
                t.distinct_count(col, &all).unwrap(),
                "distinct {col}"
            );
        }
        // Error parity: unknown column, type mismatches.
        assert!(matches!(
            d.median("s", &all),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            d.frequencies("i", &all),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            d.column("nope"),
            Err(StoreError::UnknownColumn(_))
        ));
        // Counter discipline matches Table's.
        d.reset_stats();
        t.reset_stats();
        let _ = d.count(&pred).unwrap();
        let _ = t.count(&pred).unwrap();
        let _ = d.median("i", &all).unwrap();
        let _ = t.median("i", &all).unwrap();
        assert_eq!(d.stats(), t.stats());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn columns_load_lazily_on_first_touch() {
        let t = fixture();
        let path = tmp_path("lazy");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.columns_loaded(), 0, "open must not read column data");
        let pred = StorePredicate::range("i", Value::Int(0), Value::Int(10), true);
        let _ = d.eval(&pred).unwrap();
        assert_eq!(d.columns_loaded(), 1, "one predicate, one column");
        let _ = d.median("i", &d.all_rows()).unwrap();
        assert_eq!(d.columns_loaded(), 1, "re-touch is cached");
        let _ = d.not_null("s").unwrap();
        assert_eq!(d.columns_loaded(), 2);
    }

    #[test]
    fn nan_float_bits_round_trip_and_stay_null_like() {
        // `TableBuilder` rejects NaN, but raw load paths can carry them;
        // the format must preserve the exact bits and the loaded column
        // must keep treating NaN as null in order statistics.
        let quiet_nan = f64::from_bits(0x7FF8_0000_0000_0001);
        let data = ColumnData::Float(vec![1.0, quiet_nan, 3.0, f64::NEG_INFINITY]);
        let col = Column::from_parts("x".into(), data, Bitmap::ones(4), Arc::new(Vec::new()));
        let mut schema = Schema::new();
        schema.add("x", DataType::Float).unwrap();
        let t = Table::from_parts("poisoned".into(), schema, vec![col]);
        let path = tmp_path("nan");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        let loaded = d.column("x").unwrap();
        match loaded.data() {
            ColumnData::Float(v) => {
                assert_eq!(v[1].to_bits(), quiet_nan.to_bits(), "NaN payload bits");
                assert_eq!(v[3], f64::NEG_INFINITY);
            }
            other => panic!("wrong column data: {other:?}"),
        }
        // NaN skipped like null, exactly as the in-memory column does.
        assert_eq!(
            d.median("x", &d.all_rows()).unwrap(),
            t.median("x", &t.all_rows()).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_table_round_trips() {
        let mut b = TableBuilder::new("empty");
        b.add_column("a", DataType::Int)
            .add_column("s", DataType::Str);
        let t = b.finish();
        let path = tmp_path("empty");
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        assert_eq!(d.count(&StorePredicate::True).unwrap(), 0);
        assert_eq!(d.median("a", &Bitmap::new(0)).unwrap(), None);
        d.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_headers_are_rejected_with_typed_errors() {
        let t = fixture();
        let path = tmp_path("header");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let reject = |bytes: &[u8], what: &str| {
            std::fs::write(&path, bytes).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(msg)) => msg,
                Err(other) => panic!("{what}: expected Corrupt, got {other}"),
                Ok(_) => panic!("{what}: corrupt file accepted"),
            }
        };

        // Wrong magic.
        let mut bad = pristine.clone();
        bad[0] = b'X';
        assert!(reject(&bad, "magic").contains("magic"));
        // Unsupported version.
        let mut bad = pristine.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(reject(&bad, "version").contains("version 99"));
        // Foreign endianness.
        let mut bad = pristine.clone();
        let mut marker = bad[12..16].to_vec();
        marker.reverse();
        bad[12..16].copy_from_slice(&marker);
        assert!(reject(&bad, "endian").contains("endianness"));
        // Missing trailer magic (classic truncation).
        let truncated = &pristine[..pristine.len() - 3];
        assert!(reject(truncated, "trailer").contains("truncated"));
        // Hard truncations at many points: always a typed error, never a
        // panic, never success.
        for keep in [0, 7, 16, 40, pristine.len() / 2, pristine.len() - 17] {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                Err(other) => panic!("truncation at {keep}: unexpected error {other}"),
                Ok(_) => panic!("truncation at {keep} accepted"),
            }
        }
        // Footer byte flip → footer checksum mismatch.
        let mut bad = pristine.clone();
        let flip_at = bad.len() - (TRAILER_LEN as usize) - 6;
        bad[flip_at] ^= 0xFF;
        assert!(reject(&bad, "footer").contains("footer checksum"));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inverted_or_oversized_footer_offsets_are_corrupt_not_panics() {
        // Regression for the corrupt-trailer bounds bug: the footer
        // length `footer_end - footer_start` used to be computed (and
        // fed to `vec![0u8; ...]`) straight from untrusted trailer
        // bytes, so a trailer claiming `footer_start > footer_end`
        // subtracted past zero — a panic in debug builds, an absurd
        // allocation attempt in release. Every such trailer must land
        // in `Corrupt` before any allocation.
        let t = fixture();
        let path = tmp_path("inverted-footer");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let file_len = pristine.len() as u64;
        let footer_end = file_len - TRAILER_LEN;
        let trailer_at = pristine.len() - TRAILER_LEN as usize;

        let reject_offset = |footer_start: u64, what: &str| {
            let mut bad = pristine.clone();
            bad[trailer_at..trailer_at + 8].copy_from_slice(&footer_start.to_le_bytes());
            std::fs::write(&path, &bad).unwrap();
            match DiskTable::open(&path) {
                Err(StoreError::Corrupt(msg)) => {
                    assert!(msg.contains("out of bounds"), "{what}: {msg}")
                }
                Err(other) => panic!("{what}: expected Corrupt, got {other}"),
                Ok(_) => panic!("{what}: bogus footer offset accepted"),
            }
        };

        // footer_start one past footer_end: the subtraction would go
        // negative.
        reject_offset(footer_end + 1, "start just past end");
        // footer_start at the very end of the file.
        reject_offset(file_len, "start at file length");
        // footer_start leaving no room for the footer's own CRC.
        reject_offset(footer_end - 3, "no room for footer CRC");
        // footer_start inside the header (underruns the schema block).
        reject_offset(0, "start at zero");
        reject_offset(HEADER_LEN + 3, "start inside the length prefix");
        // Length-flavoured extremes: offsets so large the implied
        // footer length (or `footer_start + 4`) wraps u64.
        reject_offset(u64::MAX, "u64::MAX");
        reject_offset(u64::MAX - 4, "u64::MAX - 4");

        // Single byte flips in the trailer offset field — the cheapest
        // real-world corruption — must also never panic: whatever the
        // flipped offset implies, the outcome is a typed error (Corrupt
        // for bad bounds, or a checksum/decode error when the offset
        // stays in range but points at the wrong bytes).
        for bit in 0..64 {
            let mut bad = pristine.clone();
            bad[trailer_at + bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &bad).unwrap();
            match DiskTable::open(&path) {
                Ok(_) => panic!("bit flip {bit} in footer offset accepted"),
                Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                Err(other) => panic!("bit flip {bit}: unexpected error {other}"),
            }
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crafted_extreme_fields_cannot_overflow() {
        // Adversarial values near u64::MAX in untrusted fields must land
        // in Corrupt via checked arithmetic — never an overflow panic
        // (debug builds trap unchecked adds/muls).
        let t = fixture();
        let path = tmp_path("overflow");
        write_table(&t, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Trailer pointing the footer at u64::MAX - 3 (footer_start + 4
        // would overflow if unchecked).
        let mut bad = pristine.clone();
        let off = bad.len() - TRAILER_LEN as usize;
        bad[off..off + 8].copy_from_slice(&(u64::MAX - 3).to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            DiskTable::open(&path),
            Err(StoreError::Corrupt(_))
        ));

        // Schema block claiming ~u64::MAX rows (rows * width would
        // overflow if unchecked). Rebuild the schema block with the
        // huge row count and re-point the length prefix, keeping the
        // real footer bytes valid by refreshing the footer CRC is not
        // needed — the row-count check runs after footer decode, so a
        // simpler route: patch the row count in place (it sits after
        // the table-name string inside the schema block) and accept
        // that the footer CRC still matches (the footer is untouched).
        let mut bad = pristine.clone();
        let name_len = u32::from_le_bytes(bad[20..24].try_into().unwrap()) as usize;
        let rows_at = 24 + name_len;
        bad[rows_at..rows_at + 8].copy_from_slice(&(u64::MAX - 1).to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        match DiskTable::open(&path) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("wrong for"), "{msg}")
            }
            other => panic!("huge row count accepted or panicked upstream: {other:?}"),
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_segments_fail_on_load_and_verify() {
        let t = fixture();
        let path = tmp_path("segment");
        write_table(&t, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte in the first column's data region (safely past
        // header + schema block; the validity words of 97 rows are 16
        // bytes, so offset HEADER+4+schema+20 lands in column data).
        let schema_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let poke = 20 + schema_len + 20;
        bytes[poke] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let d = DiskTable::open(&path).unwrap(); // header/footer still fine
                                                 // Touching the damaged column reports a checksum mismatch…
        let damaged = d
            .eval(&StorePredicate::range(
                "i",
                Value::Int(0),
                Value::Int(10),
                true,
            ))
            .unwrap_err();
        assert!(
            matches!(&damaged, StoreError::Corrupt(m) if m.contains("checksum")),
            "{damaged}"
        );
        // …and the error is sticky (cached, not retried into a panic).
        assert!(d.column("i").is_err());
        // Whole-file verification catches it too, without loading.
        let d2 = DiskTable::open(&path).unwrap();
        assert!(
            matches!(d2.verify(), Err(StoreError::Corrupt(m)) if m.contains("whole-file")),
            "verify must fail"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// The mapped reader must be observably identical to the buffered
    /// one — same results, same laziness, same typed rejection of every
    /// corruption the PR 8 footer-offset suite throws at `open` — and
    /// must never trade a typed error for a panic or a SIGBUS-shaped
    /// wild access.
    #[cfg(feature = "mmap")]
    mod mmap_parity {
        use super::*;

        #[test]
        fn mapped_round_trip_matches_buffered_bitwise() {
            let t = fixture();
            let path = tmp_path("mmap-roundtrip");
            write_table(&t, &path).unwrap();
            let m = DiskTable::open_mmap(&path).unwrap();
            assert!(m.is_mapped());
            assert_tables_equal(&m, &t);
            let pred = StorePredicate::and(vec![
                StorePredicate::range("i", Value::Int(-5), Value::Int(30), true),
                StorePredicate::set("s", vec![Value::str("fluit"), Value::str("")]),
            ]);
            let d = DiskTable::open(&path).unwrap();
            assert_eq!(m.eval(&pred).unwrap(), d.eval(&pred).unwrap());
            let sel = t.eval(&pred).unwrap();
            assert_eq!(m.median("f", &sel).unwrap(), d.median("f", &sel).unwrap());
            let (mf, md_) = m.frequencies("s", &m.all_rows()).unwrap();
            let (df, dd) = d.frequencies("s", &d.all_rows()).unwrap();
            assert_eq!((mf.entries(), md_), (df.entries(), dd));
            m.verify().unwrap();
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn mapped_columns_still_load_lazily() {
            // Mapping the file must not count as materialising columns:
            // decode still happens per column on first touch.
            let t = fixture();
            let path = tmp_path("mmap-lazy");
            write_table(&t, &path).unwrap();
            let m = DiskTable::open_mmap(&path).unwrap();
            assert_eq!(m.columns_loaded(), 0, "open_mmap must decode no column");
            let _ = m.not_null("f").unwrap();
            assert_eq!(m.columns_loaded(), 1);
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn corrupt_headers_are_rejected_before_any_mapped_segment_access() {
            let t = fixture();
            let path = tmp_path("mmap-header");
            write_table(&t, &path).unwrap();
            let pristine = std::fs::read(&path).unwrap();

            let reject = |bytes: &[u8], what: &str| {
                std::fs::write(&path, bytes).unwrap();
                match DiskTable::open_mmap(&path) {
                    Err(StoreError::Corrupt(msg)) => msg,
                    Err(other) => panic!("{what}: expected Corrupt, got {other}"),
                    Ok(_) => panic!("{what}: corrupt file accepted"),
                }
            };

            let mut bad = pristine.clone();
            bad[0] = b'X';
            assert!(reject(&bad, "magic").contains("magic"));
            let mut bad = pristine.clone();
            bad[8..12].copy_from_slice(&99u32.to_le_bytes());
            assert!(reject(&bad, "version").contains("version 99"));
            let truncated = &pristine[..pristine.len() - 3];
            assert!(reject(truncated, "trailer").contains("truncated"));
            // Hard truncations at many points: a mapped open must fail
            // with a typed error, never fault on an out-of-map access.
            for keep in [0, 7, 16, 40, pristine.len() / 2, pristine.len() - 17] {
                std::fs::write(&path, &pristine[..keep]).unwrap();
                match DiskTable::open_mmap(&path) {
                    Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                    Err(other) => panic!("truncation at {keep}: unexpected error {other}"),
                    Ok(_) => panic!("truncation at {keep} accepted"),
                }
            }
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn bogus_footer_offsets_cannot_reach_past_the_mapping() {
            // The trailer's footer offset is the one untrusted field that
            // directly addresses the map. Every hostile value — inverted,
            // at EOF, u64::MAX (offset+4 wraps), plus all 64 single-bit
            // flips — must land in Corrupt/Io, never an out-of-bounds
            // mapped access.
            let t = fixture();
            let path = tmp_path("mmap-footer-offset");
            write_table(&t, &path).unwrap();
            let pristine = std::fs::read(&path).unwrap();
            let file_len = pristine.len() as u64;
            let trailer_at = pristine.len() - TRAILER_LEN as usize;
            let footer_end = file_len - TRAILER_LEN;

            let hostile = [
                footer_end + 1,
                file_len,
                footer_end - 3,
                0,
                HEADER_LEN + 3,
                u64::MAX,
                u64::MAX - 4,
            ];
            for off in hostile {
                let mut bad = pristine.clone();
                bad[trailer_at..trailer_at + 8].copy_from_slice(&off.to_le_bytes());
                std::fs::write(&path, &bad).unwrap();
                match DiskTable::open_mmap(&path) {
                    Err(StoreError::Corrupt(_)) => {}
                    Err(other) => panic!("offset {off}: expected Corrupt, got {other}"),
                    Ok(_) => panic!("offset {off}: accepted"),
                }
            }
            for bit in 0..64 {
                let mut bad = pristine.clone();
                bad[trailer_at + bit / 8] ^= 1 << (bit % 8);
                std::fs::write(&path, &bad).unwrap();
                match DiskTable::open_mmap(&path) {
                    Ok(_) => panic!("bit flip {bit} in footer offset accepted"),
                    Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                    Err(other) => panic!("bit flip {bit}: unexpected error {other}"),
                }
            }
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn segment_byte_flips_fail_mapped_loads_with_typed_errors() {
            // Byte-flip every region of the data area in turn: whichever
            // segment the flip lands in, first touch of the damaged
            // column reports a checksum mismatch (from a *mapped* slice
            // — no read syscall to fail first), the error is sticky, and
            // undamaged columns keep working off the same mapping.
            let t = fixture();
            let path = tmp_path("mmap-segment");
            write_table(&t, &path).unwrap();
            let pristine = std::fs::read(&path).unwrap();
            let schema_len = u32::from_le_bytes(pristine[16..20].try_into().unwrap()) as usize;
            let data_start = 20 + schema_len;

            let mut bad = pristine.clone();
            bad[data_start + 20] ^= 0x55; // first column's data words
            std::fs::write(&path, &bad).unwrap();
            let m = DiskTable::open_mmap(&path).unwrap(); // header/footer intact
            let err = m.column("i").unwrap_err();
            assert!(
                matches!(&err, StoreError::Corrupt(msg) if msg.contains("checksum")),
                "{err}"
            );
            assert!(m.column("i").is_err(), "damage must be sticky, not retried");
            // A column whose segments the flip did not touch still loads.
            assert!(m.column("b").is_ok());
            // And whole-file verify over the mapping catches it too.
            assert!(
                matches!(m.verify(), Err(StoreError::Corrupt(msg)) if msg.contains("whole-file"))
            );
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn truncation_inside_the_data_region_is_corrupt_at_open() {
            // Chop the file so the footer survives relocation nowhere:
            // the trailer (and thus footer) is gone, so open fails long
            // before any segment slice could dangle past the mapping.
            let t = fixture();
            let path = tmp_path("mmap-trunc-data");
            write_table(&t, &path).unwrap();
            let pristine = std::fs::read(&path).unwrap();
            let schema_len = u32::from_le_bytes(pristine[16..20].try_into().unwrap()) as usize;
            for keep in [20 + schema_len + 1, pristine.len() * 3 / 4] {
                std::fs::write(&path, &pristine[..keep]).unwrap();
                match DiskTable::open_mmap(&path) {
                    Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => {}
                    Err(other) => panic!("keep {keep}: unexpected error {other}"),
                    Ok(_) => panic!("keep {keep}: truncated file accepted"),
                }
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn opening_a_non_charles_file_is_a_typed_error() {
        let path = tmp_path("notcharles");
        std::fs::write(&path, b"tonnage:int\n1000\n").unwrap();
        assert!(matches!(
            DiskTable::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
        // Missing file → Io, with the path in the message.
        assert!(matches!(DiskTable::open(&path), Err(StoreError::Io(_))));
    }
}
