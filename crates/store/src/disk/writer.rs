//! Writing `.charles` files: eager ([`write_table`]) and streaming
//! ([`StreamWriter`]).
//!
//! Both writers are single-pass: header, schema block, column segments,
//! then the footer index — no seeks, so everything streams through a
//! `BufWriter`. Offsets and the whole-file CRC are tracked as bytes go
//! out. The eager writer computes each segment's CRC over its encoded
//! bytes up front; the streaming writer accumulates segment CRCs
//! incrementally as values arrive, which is what lets it emit files far
//! larger than memory — it never holds a column's data, only the current
//! column's validity bitmap and (for strings) dictionary.
//!
//! The two writers order a column's segments differently (eager:
//! validity·data·dict; streaming: data·validity·dict, because validity
//! is only complete after the last value). Both orders are equally valid
//! `.charles` v1: the footer's absolute offsets are normative, segment
//! order never was (see `docs/FORMAT.md`), and [`super::DiskTable`]
//! reads both identically.

use super::{
    io_err, type_code, ByteWriter, ColumnSegments, Crc32, SegmentRef, ENDIAN_MARKER,
    FORMAT_VERSION, MAGIC, TRAILER_MAGIC,
};
use crate::column::{Column, ColumnData};
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A writer that tracks the absolute offset and the running whole-file
/// CRC of everything written through it.
struct TrackedWriter<W: Write> {
    inner: W,
    offset: u64,
    crc: Crc32,
    /// Incremental state of the segment currently being streamed
    /// (between [`TrackedWriter::begin_segment`] and
    /// [`TrackedWriter::end_segment`]).
    seg_start: u64,
    seg_crc: Crc32,
}

impl<W: Write> TrackedWriter<W> {
    fn new(inner: W) -> TrackedWriter<W> {
        TrackedWriter {
            inner,
            offset: 0,
            crc: Crc32::new(),
            seg_start: 0,
            seg_crc: Crc32::new(),
        }
    }

    fn write(&mut self, bytes: &[u8]) -> StoreResult<()> {
        self.inner
            .write_all(bytes)
            .map_err(|e| io_err("writing .charles file", e))?;
        self.offset += bytes.len() as u64;
        self.crc.update(bytes);
        Ok(())
    }

    /// Start an incrementally-checksummed segment at the current offset.
    fn begin_segment(&mut self) {
        self.seg_start = self.offset;
        self.seg_crc = Crc32::new();
    }

    /// Write bytes belonging to the open segment.
    fn write_seg(&mut self, bytes: &[u8]) -> StoreResult<()> {
        self.seg_crc.update(bytes);
        self.write(bytes)
    }

    /// Close the open segment and return its footer reference.
    fn end_segment(&mut self) -> SegmentRef {
        SegmentRef {
            offset: self.seg_start,
            len: self.offset - self.seg_start,
            crc: self.seg_crc.finish(),
        }
    }

    /// Write one fully-materialised segment and return its reference.
    fn segment(&mut self, bytes: &[u8]) -> StoreResult<SegmentRef> {
        self.begin_segment();
        self.write_seg(bytes)?;
        Ok(self.end_segment())
    }
}

/// Encode a column's data segment (fixed-width, little-endian; see
/// `docs/FORMAT.md` §data-segment). Float bits are written verbatim, so
/// any NaN payload a raw-loaded column carries round-trips bitwise.
fn encode_data(data: &ColumnData) -> Vec<u8> {
    match data {
        ColumnData::Int(v) | ColumnData::Date(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Float(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            out
        }
        ColumnData::Str(v) => {
            let mut out = Vec::with_capacity(v.len() * 4);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Bool(v) => v.iter().map(|&b| b as u8).collect(),
    }
}

/// Encode a validity bitmap as its raw word layout.
fn encode_validity(col: &Column) -> Vec<u8> {
    let words = col.validity().words();
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words.iter() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Encode a string dictionary (entry count, then length-prefixed UTF-8).
fn encode_dict(dict: &[String]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(dict.len() as u32);
    for s in dict {
        w.string(s);
    }
    w.into_bytes()
}

/// Encode the schema block: table name, row count, column names/types.
fn encode_schema(name: &str, rows: usize, schema: &Schema) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.string(name);
    w.u64(rows as u64);
    w.u32(schema.arity() as u32);
    for c in schema.columns() {
        w.string(&c.name);
        w.u8(type_code(c.ty));
    }
    w.into_bytes()
}

/// Encode the footer: per-column segment index plus the whole-file CRC.
fn encode_footer(columns: &[ColumnSegments], file_crc: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let seg = |w: &mut ByteWriter, s: &SegmentRef| {
        w.u64(s.offset);
        w.u64(s.len);
        w.u32(s.crc);
    };
    for c in columns {
        seg(&mut w, &c.validity);
        seg(&mut w, &c.data);
        match &c.dict {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                seg(&mut w, d);
            }
        }
    }
    w.u32(file_crc);
    w.into_bytes()
}

/// Write `table` to `path` in the `.charles` v1 format (see
/// `docs/FORMAT.md`). Overwrites any existing file. The written file
/// round-trips bitwise: [`super::DiskTable::open`] on the result yields
/// a backend whose every operation — and therefore the full advisor
/// output — is identical to running against `table` directly.
///
/// ```no_run
/// use charles_store::{TableBuilder, DataType, Value, disk};
///
/// let mut b = TableBuilder::new("boats");
/// b.add_column("tonnage", DataType::Int);
/// b.push_row(vec![Value::Int(1000)]).unwrap();
/// let table = b.finish();
/// disk::write_table(&table, "boats.charles").unwrap();
/// let loaded = disk::DiskTable::open("boats.charles").unwrap();
/// assert_eq!(loaded.len(), 1);
/// ```
pub fn write_table(table: &Table, path: impl AsRef<Path>) -> StoreResult<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| io_err(&format!("creating {:?}", path.as_ref()), e))?;
    let mut w = TrackedWriter::new(BufWriter::new(file));

    // Header.
    w.write(&MAGIC)?;
    w.write(&FORMAT_VERSION.to_le_bytes())?;
    w.write(&ENDIAN_MARKER.to_le_bytes())?;

    // Schema block, length-prefixed so the reader can slurp it without
    // parsing ahead.
    let schema = encode_schema(table.name(), table.len(), table.schema());
    w.write(&(schema.len() as u32).to_le_bytes())?;
    w.write(&schema)?;

    // Column segments, schema order.
    let mut columns = Vec::with_capacity(table.columns().len());
    for col in table.columns() {
        let validity = w.segment(&encode_validity(col))?;
        let data = w.segment(&encode_data(col.data()))?;
        let dict = match col.data() {
            ColumnData::Str(_) => Some(w.segment(&encode_dict(col.dict()))?),
            _ => None,
        };
        columns.push(ColumnSegments {
            validity,
            data,
            dict,
        });
    }

    // Footer (indexed by the trailer) + its own CRC + trailer.
    let footer_start = w.offset;
    let file_crc = w.crc.finish();
    let footer = encode_footer(&columns, file_crc);
    let footer_crc = Crc32::of(&footer);
    w.write(&footer)?;
    w.write(&footer_crc.to_le_bytes())?;
    w.write(&footer_start.to_le_bytes())?;
    w.write(&TRAILER_MAGIC)?;
    w.inner
        .flush()
        .map_err(|e| io_err("flushing .charles file", e))?;
    Ok(())
}

/// State held for the column currently being streamed — the *entire*
/// per-column memory footprint of a [`StreamWriter`]: one validity
/// bitmap and, for string columns, the dictionary. Data bytes go
/// straight to disk.
struct ColumnState {
    rows_written: usize,
    validity: crate::Bitmap,
    /// Dictionary entries in first-occurrence order (string columns),
    /// so streamed codes are identical to [`Column`]'s interning.
    dict: Vec<String>,
    /// `dict` lookup index — a hash map rather than `Column`'s linear
    /// scan, because a stream may intern against the dictionary 10⁸
    /// times.
    dict_index: HashMap<String, u32>,
}

impl ColumnState {
    fn new(rows_hint: usize) -> ColumnState {
        let _ = rows_hint;
        ColumnState {
            rows_written: 0,
            validity: crate::Bitmap::new(0),
            dict: Vec::new(),
            dict_index: HashMap::new(),
        }
    }
}

/// Writes a `.charles` file **one value at a time, one column at a
/// time**, in bounded memory — the producer for datasets too large to
/// assemble as an in-memory [`Table`] first (a 10⁸-row table is tens of
/// GB materialised; this writer holds one validity bitmap and one
/// string dictionary at a time).
///
/// The protocol is column-major, matching the file layout: declare the
/// schema and exact row count up front, then for each schema column in
/// order, [`StreamWriter::append`] every row's value and call
/// [`StreamWriter::end_column`]; finally [`StreamWriter::finish`] seals
/// the footer. The caller regenerates or re-reads the rows once per
/// column (an *arity-pass* producer — see `charles-datagen`'s
/// `generate_and_save_streaming`, whose deterministic generators make
/// re-iteration free).
///
/// Every protocol violation is a typed error, not a panic: appending a
/// value of the wrong type ([`StoreError::TypeMismatch`]), a NaN float
/// ([`StoreError::Parse`], matching [`Column::push`]), more values than
/// the declared row count ([`StoreError::LengthMismatch`]), ending a
/// column early ([`StoreError::LengthMismatch`]), appending past the
/// last column ([`StoreError::ArityMismatch`]), or finishing with
/// columns missing ([`StoreError::ArityMismatch`]).
///
/// The streamed file is read by [`super::DiskTable`] exactly like an
/// eagerly written one — same schema, same values, same advisor output
/// (pinned by this module's tests and `tests/disk_persistence.rs`). The
/// only physical difference is per-column segment order (data before
/// validity); the footer's absolute offsets make that invisible.
pub struct StreamWriter {
    w: TrackedWriter<BufWriter<std::fs::File>>,
    name: String,
    schema: Schema,
    rows: usize,
    /// Completed columns' segment references, schema order.
    columns: Vec<ColumnSegments>,
    state: ColumnState,
    finished: bool,
}

impl StreamWriter {
    /// Create `path` and write the header and schema block. `rows` is
    /// the exact row count every column must supply.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        schema: Schema,
        rows: usize,
    ) -> StoreResult<StreamWriter> {
        let file = std::fs::File::create(path.as_ref())
            .map_err(|e| io_err(&format!("creating {:?}", path.as_ref()), e))?;
        let mut w = TrackedWriter::new(BufWriter::new(file));
        w.write(&MAGIC)?;
        w.write(&FORMAT_VERSION.to_le_bytes())?;
        w.write(&ENDIAN_MARKER.to_le_bytes())?;
        let schema_bytes = encode_schema(name, rows, &schema);
        w.write(&(schema_bytes.len() as u32).to_le_bytes())?;
        w.write(&schema_bytes)?;
        w.begin_segment(); // first column's data segment
        Ok(StreamWriter {
            w,
            name: name.to_string(),
            schema,
            rows,
            columns: Vec::new(),
            state: ColumnState::new(rows),
            finished: false,
        })
    }

    /// Table name the file will carry.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column currently accepting values (schema index).
    pub fn current_column(&self) -> usize {
        self.columns.len()
    }

    /// Append the next row's value for the current column (`None` for
    /// null). Data bytes are written (and checksummed) immediately.
    pub fn append(&mut self, value: Option<Value>) -> StoreResult<()> {
        let idx = self.columns.len();
        if self.finished || idx >= self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                found: idx + 1,
            });
        }
        if self.state.rows_written >= self.rows {
            return Err(StoreError::LengthMismatch {
                left: self.rows,
                right: self.state.rows_written + 1,
            });
        }
        let meta = &self.schema.columns()[idx];
        let valid = value.is_some();
        // Null placeholders match `Column::push_physical_default`, so a
        // streamed file is value-identical to an eagerly built one.
        match (meta.ty, value) {
            (DataType::Int, v) => {
                let x = match v {
                    Some(Value::Int(x)) => x,
                    None => 0,
                    Some(other) => return Err(self.type_err(idx, &other)),
                };
                self.w.write_seg(&x.to_le_bytes())?;
            }
            (DataType::Date, v) => {
                let x = match v {
                    Some(Value::Date(x)) => x,
                    None => 0,
                    Some(other) => return Err(self.type_err(idx, &other)),
                };
                self.w.write_seg(&x.to_le_bytes())?;
            }
            (DataType::Float, v) => {
                let x = match v {
                    Some(Value::Float(x)) => {
                        if x.is_nan() {
                            return Err(StoreError::Parse(format!(
                                "NaN rejected in column {:?}",
                                self.schema.columns()[idx].name
                            )));
                        }
                        x
                    }
                    None => 0.0,
                    Some(other) => return Err(self.type_err(idx, &other)),
                };
                self.w.write_seg(&x.to_bits().to_le_bytes())?;
            }
            (DataType::Bool, v) => {
                let x = match v {
                    Some(Value::Bool(x)) => x,
                    None => false,
                    Some(other) => return Err(self.type_err(idx, &other)),
                };
                self.w.write_seg(&[x as u8])?;
            }
            (DataType::Str, v) => {
                let code = match v {
                    Some(Value::Str(s)) => match self.state.dict_index.get(&s) {
                        Some(&c) => c,
                        None => {
                            let c = self.state.dict.len() as u32;
                            self.state.dict.push(s.clone());
                            self.state.dict_index.insert(s, c);
                            c
                        }
                    },
                    None => 0,
                    Some(other) => return Err(self.type_err(idx, &other)),
                };
                self.w.write_seg(&code.to_le_bytes())?;
            }
        }
        self.state.validity.push(valid);
        self.state.rows_written += 1;
        Ok(())
    }

    /// Seal the current column: close its data segment, write its
    /// validity words and (for strings) dictionary, and advance to the
    /// next schema column. Errs if the column is short of the declared
    /// row count.
    pub fn end_column(&mut self) -> StoreResult<()> {
        let idx = self.columns.len();
        if self.finished || idx >= self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                found: idx + 1,
            });
        }
        if self.state.rows_written != self.rows {
            return Err(StoreError::LengthMismatch {
                left: self.rows,
                right: self.state.rows_written,
            });
        }
        let data = self.w.end_segment();
        self.w.begin_segment();
        for word in self.state.validity.words().iter() {
            self.w.write_seg(&word.to_le_bytes())?;
        }
        let validity = self.w.end_segment();
        let dict = if self.schema.columns()[idx].ty == DataType::Str {
            Some(self.w.segment(&encode_dict(&self.state.dict))?)
        } else {
            None
        };
        self.columns.push(ColumnSegments {
            validity,
            data,
            dict,
        });
        self.state = ColumnState::new(self.rows);
        self.w.begin_segment(); // next column's data segment (unused if done)
        Ok(())
    }

    /// Write the footer, its CRC and the trailer, and flush. Errs if any
    /// schema column was not streamed.
    pub fn finish(mut self) -> StoreResult<()> {
        if self.columns.len() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                found: self.columns.len(),
            });
        }
        self.finished = true;
        let footer_start = self.w.offset;
        let file_crc = self.w.crc.finish();
        let footer = encode_footer(&self.columns, file_crc);
        let footer_crc = Crc32::of(&footer);
        self.w.write(&footer)?;
        self.w.write(&footer_crc.to_le_bytes())?;
        self.w.write(&footer_start.to_le_bytes())?;
        self.w.write(&TRAILER_MAGIC)?;
        self.w
            .inner
            .flush()
            .map_err(|e| io_err("flushing .charles file", e))?;
        Ok(())
    }

    fn type_err(&self, idx: usize, found: &Value) -> StoreError {
        let meta = &self.schema.columns()[idx];
        StoreError::TypeMismatch {
            column: meta.name.clone(),
            expected: meta.ty.name().into(),
            found: found.data_type().name().into(),
        }
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::backend::Backend;
    use crate::builder::TableBuilder;
    use crate::disk::DiskTable;
    use crate::predicate::StorePredicate;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "charles-stream-{tag}-{}-{n}.charles",
            std::process::id()
        ))
    }

    /// A table exercising every type, nulls, and dictionary reuse —
    /// with a deterministic per-cell generator so the "stream" can
    /// re-produce each column independently.
    fn cell(row: usize, col: usize) -> Option<Value> {
        let k = row as i64;
        match col {
            0 => (k % 7 != 3).then_some(Value::Int(k * 31 % 50 - 10)),
            1 => (k % 5 != 2).then_some(Value::Float((k as f64) * 0.25 - 3.0)),
            2 => (k % 11 != 5)
                .then(|| Value::str(["fluit", "", "jacht", "de, lange"][(k % 4) as usize])),
            3 => (k % 13 != 7).then_some(Value::Date(k * 372 % 1000)),
            _ => (k % 3 != 1).then_some(Value::Bool(k % 2 == 0)),
        }
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add("i", DataType::Int).unwrap();
        s.add("f", DataType::Float).unwrap();
        s.add("s", DataType::Str).unwrap();
        s.add("d", DataType::Date).unwrap();
        s.add("b", DataType::Bool).unwrap();
        s
    }

    fn eager_table(rows: usize) -> Table {
        let mut b = TableBuilder::new("streamed");
        b.add_column("i", DataType::Int)
            .add_column("f", DataType::Float)
            .add_column("s", DataType::Str)
            .add_column("d", DataType::Date)
            .add_column("b", DataType::Bool);
        for r in 0..rows {
            b.push_row_opt((0..5).map(|c| cell(r, c)).collect())
                .unwrap();
        }
        b.finish()
    }

    fn stream_file(rows: usize, path: &Path) {
        let mut w = StreamWriter::create(path, "streamed", schema(), rows).unwrap();
        for c in 0..5 {
            for r in 0..rows {
                w.append(cell(r, c)).unwrap();
            }
            w.end_column().unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn streamed_file_is_value_identical_to_eager_table() {
        let rows = 113;
        let t = eager_table(rows);
        let path = tmp_path("diff");
        stream_file(rows, &path);
        let d = DiskTable::open(&path).unwrap();
        d.verify().unwrap();
        assert_eq!(d.len(), rows);
        assert_eq!(d.schema(), t.schema());
        for c in t.schema().columns() {
            let dc = d.column(&c.name).unwrap();
            let tc = t.column(&c.name).unwrap();
            assert_eq!(dc.dict(), tc.dict(), "dict order of {}", c.name);
            for i in 0..rows {
                assert_eq!(dc.get(i), tc.get(i), "cell ({i}, {})", c.name);
            }
        }
        // And the operations the advisor issues agree bitwise.
        let pred = StorePredicate::and(vec![
            StorePredicate::range("i", Value::Int(-5), Value::Int(30), true),
            StorePredicate::set("s", vec![Value::str("fluit"), Value::str("")]),
        ]);
        assert_eq!(d.eval(&pred).unwrap(), t.eval(&pred).unwrap());
        let sel = t.eval(&pred).unwrap();
        assert_eq!(d.median("f", &sel).unwrap(), t.median("f", &sel).unwrap());
        let (df, dd) = d.frequencies("s", &d.all_rows()).unwrap();
        let (tf, td) = t.frequencies("s", &t.all_rows()).unwrap();
        assert_eq!((df.entries(), dd), (tf.entries(), td));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streamed_and_eager_files_read_back_identically() {
        // Segment order differs between the writers (data-before-
        // validity when streaming); the offset-driven reader must hide
        // that entirely.
        let rows = 113;
        let t = eager_table(rows);
        let eager_path = tmp_path("eager");
        let stream_path = tmp_path("stream");
        write_table(&t, &eager_path).unwrap();
        stream_file(rows, &stream_path);
        let de = DiskTable::open(&eager_path).unwrap();
        let ds = DiskTable::open(&stream_path).unwrap();
        for c in t.schema().columns() {
            for i in 0..rows {
                assert_eq!(
                    de.column(&c.name).unwrap().get(i),
                    ds.column(&c.name).unwrap().get(i)
                );
            }
        }
        std::fs::remove_file(&eager_path).unwrap();
        std::fs::remove_file(&stream_path).unwrap();
    }

    #[test]
    fn empty_stream_round_trips() {
        let path = tmp_path("empty");
        let mut w = StreamWriter::create(&path, "empty", schema(), 0).unwrap();
        for _ in 0..5 {
            w.end_column().unwrap();
        }
        w.finish().unwrap();
        let d = DiskTable::open(&path).unwrap();
        assert_eq!(d.len(), 0);
        d.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn protocol_violations_are_typed_errors() {
        let path = tmp_path("proto");
        let mut s = Schema::new();
        s.add("i", DataType::Int).unwrap();
        s.add("f", DataType::Float).unwrap();

        // Wrong type.
        let mut w = StreamWriter::create(&path, "t", s.clone(), 2).unwrap();
        assert!(matches!(
            w.append(Some(Value::str("oops"))),
            Err(StoreError::TypeMismatch { .. })
        ));
        // NaN, exactly like `Column::push`.
        w.append(Some(Value::Int(1))).unwrap();
        w.append(None).unwrap();
        w.end_column().unwrap();
        assert!(matches!(
            w.append(Some(Value::Float(f64::NAN))),
            Err(StoreError::Parse(_))
        ));
        // Too many rows.
        w.append(Some(Value::Float(1.0))).unwrap();
        w.append(Some(Value::Float(2.0))).unwrap();
        assert!(matches!(
            w.append(Some(Value::Float(3.0))),
            Err(StoreError::LengthMismatch { left: 2, right: 3 })
        ));
        w.end_column().unwrap();
        // Appending past the last column.
        assert!(matches!(
            w.append(Some(Value::Int(9))),
            Err(StoreError::ArityMismatch { .. })
        ));
        // Short column.
        let path2 = tmp_path("proto-short");
        let mut w2 = StreamWriter::create(&path2, "t", s.clone(), 2).unwrap();
        w2.append(Some(Value::Int(1))).unwrap();
        assert!(matches!(
            w2.end_column(),
            Err(StoreError::LengthMismatch { left: 2, right: 1 })
        ));
        // Finishing with a column missing.
        let path3 = tmp_path("proto-missing");
        let mut w3 = StreamWriter::create(&path3, "t", s, 1).unwrap();
        w3.append(Some(Value::Int(1))).unwrap();
        w3.end_column().unwrap();
        assert!(matches!(
            w3.finish(),
            Err(StoreError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
        for p in [&path, &path2, &path3] {
            let _ = std::fs::remove_file(p);
        }
    }
}
