//! Writing a [`Table`] out as a `.charles` file.
//!
//! The writer is eager and single-pass: header, schema block, then every
//! column's segments in schema order, then the footer index — no seeks,
//! so it streams through a `BufWriter`. Offsets and the whole-file CRC
//! are tracked as bytes go out; per-segment CRCs are computed over each
//! segment's encoded bytes before they are written.

use super::{
    io_err, type_code, ByteWriter, ColumnSegments, Crc32, SegmentRef, ENDIAN_MARKER,
    FORMAT_VERSION, MAGIC, TRAILER_MAGIC,
};
use crate::column::{Column, ColumnData};
use crate::error::StoreResult;
use crate::table::Table;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A writer that tracks the absolute offset and the running whole-file
/// CRC of everything written through it.
struct TrackedWriter<W: Write> {
    inner: W,
    offset: u64,
    crc: Crc32,
}

impl<W: Write> TrackedWriter<W> {
    fn new(inner: W) -> TrackedWriter<W> {
        TrackedWriter {
            inner,
            offset: 0,
            crc: Crc32::new(),
        }
    }

    fn write(&mut self, bytes: &[u8]) -> StoreResult<()> {
        self.inner
            .write_all(bytes)
            .map_err(|e| io_err("writing .charles file", e))?;
        self.offset += bytes.len() as u64;
        self.crc.update(bytes);
        Ok(())
    }

    /// Write one segment and return its footer reference.
    fn segment(&mut self, bytes: &[u8]) -> StoreResult<SegmentRef> {
        let seg = SegmentRef {
            offset: self.offset,
            len: bytes.len() as u64,
            crc: Crc32::of(bytes),
        };
        self.write(bytes)?;
        Ok(seg)
    }
}

/// Encode a column's data segment (fixed-width, little-endian; see
/// `docs/FORMAT.md` §data-segment). Float bits are written verbatim, so
/// any NaN payload a raw-loaded column carries round-trips bitwise.
fn encode_data(data: &ColumnData) -> Vec<u8> {
    match data {
        ColumnData::Int(v) | ColumnData::Date(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Float(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            out
        }
        ColumnData::Str(v) => {
            let mut out = Vec::with_capacity(v.len() * 4);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Bool(v) => v.iter().map(|&b| b as u8).collect(),
    }
}

/// Encode a validity bitmap as its raw word layout.
fn encode_validity(col: &Column) -> Vec<u8> {
    let words = col.validity().words();
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Encode a string dictionary (entry count, then length-prefixed UTF-8).
fn encode_dict(dict: &[String]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(dict.len() as u32);
    for s in dict {
        w.string(s);
    }
    w.into_bytes()
}

/// Encode the schema block: table name, row count, column names/types.
fn encode_schema(table: &Table) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.string(table.name());
    w.u64(table.len() as u64);
    w.u32(table.schema().arity() as u32);
    for c in table.schema().columns() {
        w.string(&c.name);
        w.u8(type_code(c.ty));
    }
    w.into_bytes()
}

/// Encode the footer: per-column segment index plus the whole-file CRC.
fn encode_footer(columns: &[ColumnSegments], file_crc: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let seg = |w: &mut ByteWriter, s: &SegmentRef| {
        w.u64(s.offset);
        w.u64(s.len);
        w.u32(s.crc);
    };
    for c in columns {
        seg(&mut w, &c.validity);
        seg(&mut w, &c.data);
        match &c.dict {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                seg(&mut w, d);
            }
        }
    }
    w.u32(file_crc);
    w.into_bytes()
}

/// Write `table` to `path` in the `.charles` v1 format (see
/// `docs/FORMAT.md`). Overwrites any existing file. The written file
/// round-trips bitwise: [`super::DiskTable::open`] on the result yields
/// a backend whose every operation — and therefore the full advisor
/// output — is identical to running against `table` directly.
///
/// ```no_run
/// use charles_store::{TableBuilder, DataType, Value, disk};
///
/// let mut b = TableBuilder::new("boats");
/// b.add_column("tonnage", DataType::Int);
/// b.push_row(vec![Value::Int(1000)]).unwrap();
/// let table = b.finish();
/// disk::write_table(&table, "boats.charles").unwrap();
/// let loaded = disk::DiskTable::open("boats.charles").unwrap();
/// assert_eq!(loaded.len(), 1);
/// ```
pub fn write_table(table: &Table, path: impl AsRef<Path>) -> StoreResult<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| io_err(&format!("creating {:?}", path.as_ref()), e))?;
    let mut w = TrackedWriter::new(BufWriter::new(file));

    // Header.
    w.write(&MAGIC)?;
    w.write(&FORMAT_VERSION.to_le_bytes())?;
    w.write(&ENDIAN_MARKER.to_le_bytes())?;

    // Schema block, length-prefixed so the reader can slurp it without
    // parsing ahead.
    let schema = encode_schema(table);
    w.write(&(schema.len() as u32).to_le_bytes())?;
    w.write(&schema)?;

    // Column segments, schema order.
    let mut columns = Vec::with_capacity(table.columns().len());
    for col in table.columns() {
        let validity = w.segment(&encode_validity(col))?;
        let data = w.segment(&encode_data(col.data()))?;
        let dict = match col.data() {
            ColumnData::Str(_) => Some(w.segment(&encode_dict(col.dict()))?),
            _ => None,
        };
        columns.push(ColumnSegments {
            validity,
            data,
            dict,
        });
    }

    // Footer (indexed by the trailer) + its own CRC + trailer.
    let footer_start = w.offset;
    let file_crc = w.crc.finish();
    let footer = encode_footer(&columns, file_crc);
    let footer_crc = Crc32::of(&footer);
    w.write(&footer)?;
    w.write(&footer_crc.to_le_bytes())?;
    w.write(&footer_start.to_le_bytes())?;
    w.write(&TRAILER_MAGIC)?;
    w.inner
        .flush()
        .map_err(|e| io_err("flushing .charles file", e))?;
    Ok(())
}
