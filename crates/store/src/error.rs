//! Error type shared by all storage operations.

use std::fmt;

/// Errors reported by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A value had a different type than the column it was destined for.
    TypeMismatch {
        /// Column involved in the operation.
        column: String,
        /// Type declared by the schema.
        expected: String,
        /// Type actually supplied.
        found: String,
    },
    /// A row had the wrong number of fields for the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of fields supplied.
        found: usize,
    },
    /// Two columns that must be aligned have different lengths.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// An operation that requires a non-empty input got an empty one.
    Empty(String),
    /// CSV or value parsing failure.
    Parse(String),
    /// CSV parsing failure with a position: 1-based line and column
    /// (column = field index within the line; `None` when the failure
    /// concerns the line as a whole, e.g. an unterminated quote).
    Csv {
        /// 1-based line number within the document.
        line: usize,
        /// 1-based field index within the line, when attributable.
        column: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// A column name was used twice when building a schema.
    DuplicateColumn(String),
    /// An I/O failure while reading or writing persistent storage. The
    /// underlying `std::io::Error` is flattened to a string so the error
    /// stays `Clone + PartialEq` like the rest of the enum.
    Io(String),
    /// A persistent file failed structural validation: bad magic, an
    /// unsupported format version, a checksum mismatch, a truncation, or
    /// an out-of-bounds segment reference.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            StoreError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on column {column:?}: expected {expected}, found {found}"
            ),
            StoreError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {found}"
                )
            }
            StoreError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StoreError::Empty(what) => write!(f, "operation requires non-empty input: {what}"),
            StoreError::Parse(msg) => write!(f, "parse error: {msg}"),
            StoreError::Csv {
                line,
                column,
                message,
            } => match column {
                Some(col) => write!(f, "CSV parse error at line {line}, column {col}: {message}"),
                None => write!(f, "CSV parse error at line {line}: {message}"),
            },
            StoreError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            StoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenient result alias used across the crate.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = StoreError::UnknownColumn("tonnage".into());
        assert!(e.to_string().contains("tonnage"));
    }

    #[test]
    fn display_type_mismatch_mentions_both_types() {
        let e = StoreError::TypeMismatch {
            column: "x".into(),
            expected: "Int".into(),
            found: "Str".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Int") && s.contains("Str"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StoreError::Empty("median".into()));
    }

    #[test]
    fn display_csv_io_and_corrupt() {
        let e = StoreError::Csv {
            line: 3,
            column: Some(2),
            message: "bad int literal".into(),
        };
        assert_eq!(
            e.to_string(),
            "CSV parse error at line 3, column 2: bad int literal"
        );
        let e = StoreError::Csv {
            line: 7,
            column: None,
            message: "unterminated quote".into(),
        };
        assert_eq!(
            e.to_string(),
            "CSV parse error at line 7: unterminated quote"
        );
        assert!(StoreError::Io("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
        assert!(StoreError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn display_arity_and_length() {
        assert!(StoreError::ArityMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains('3'));
        assert!(StoreError::LengthMismatch { left: 1, right: 2 }
            .to_string()
            .contains("1 vs 2"));
    }
}
