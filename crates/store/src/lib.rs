//! `charles-store` — the storage substrate for the Charles query advisor.
//!
//! The original Charles prototype (Sellam & Kersten, CIDR 2013) was a C
//! front-end on top of MonetDB. Its workload against the DBMS consists of
//! exactly three kinds of operations (paper, §5.1):
//!
//! 1. **counts over predicates** — the cardinality of a conjunctive
//!    selection, needed for covers and entropies;
//! 2. **median calculations** — the split points for the CUT primitive;
//! 3. **frequency histograms** — the split points for nominal attributes.
//!
//! This crate provides those operations over an in-memory **columnar**
//! engine ([`Table`] + [`ColumnData`] + [`Bitmap`] selection vectors), a
//! **row-oriented** baseline engine ([`rowstore::RowTable`]) behind the same
//! [`Backend`] trait (so the paper's "column stores are well suited for
//! Charles' workloads" claim can be measured), a **row-range sharded**
//! engine ([`sharded::ShardedTable`]) that evaluates counts and medians
//! shard-parallel with bitwise-identical results, a **persistent on-disk
//! columnar format** (`.charles`, spec in `docs/FORMAT.md`) with a lazy
//! [`disk::DiskTable`] backend so datasets outlive the process, plus CSV
//! import/export, sampling, and order statistics.
//!
//! Everything is deliberately index-free: the paper points out that the
//! advisor cannot know ahead of time which columns will be queried, so
//! a-priori index creation is impossible and scans are the natural cost
//! model.
//!
//! # Quick tour
//!
//! ```
//! use charles_store::{Backend, TableBuilder, DataType, Value, RangePred, StorePredicate};
//!
//! let mut b = TableBuilder::new("boats");
//! b.add_column("tonnage", DataType::Int);
//! b.add_column("kind", DataType::Str);
//! b.push_row(vec![Value::Int(1000), Value::str("fluit")]).unwrap();
//! b.push_row(vec![Value::Int(1200), Value::str("jacht")]).unwrap();
//! b.push_row(vec![Value::Int(900), Value::str("fluit")]).unwrap();
//! let table = b.finish();
//!
//! // Count over a predicate: tonnage in [950, 1250]
//! let pred = StorePredicate::range("tonnage", Value::Int(950), Value::Int(1250), true);
//! let sel = table.eval(&pred).unwrap();
//! assert_eq!(sel.count_ones(), 2);
//!
//! // Median of the selected tonnage values (1000 and 1200 → 1100)
//! let med = table.median("tonnage", &sel).unwrap().unwrap();
//! assert_eq!(med, Value::Int(1100));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod bitmap;
pub mod builder;
pub mod column;
pub mod csv;
pub mod datatype;
pub mod disk;
pub mod error;
pub mod predicate;
pub mod rowstore;
pub mod sample;
pub mod schema;
pub mod sharded;
pub mod stats;
pub mod table;
pub mod value;

pub use backend::{Backend, BackendStats};
pub use bitmap::{compressed_selections, set_compressed_selections, Bitmap};
pub use builder::TableBuilder;
pub use column::{Column, ColumnData};
pub use csv::{read_csv_file, read_csv_str, write_csv_file, write_csv_string};
pub use datatype::DataType;
pub use disk::{write_table, DiskTable, StreamWriter};
pub use error::{StoreError, StoreResult};
pub use predicate::{RangePred, SetPred, StorePredicate};
pub use rowstore::{Row, RowTable};
pub use sample::{bernoulli_sample, reservoir_sample};
pub use schema::{ColumnMeta, Schema};
pub use sharded::ShardedTable;
pub use stats::{exact_median, quantile_value, FrequencyTable};
pub use table::Table;
pub use value::Value;
