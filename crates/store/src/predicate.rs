//! Storage-level predicates.
//!
//! These are the *physical* counterparts of SDL constraints: a range scan,
//! a set-membership scan, or a conjunction of those. The SDL crate lowers
//! its language-level predicates into [`StorePredicate`]s; the table
//! evaluates them into selection [`Bitmap`]s.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::error::{StoreError, StoreResult};
use crate::value::Value;

/// A range constraint `lo ≤ x ≤ hi` (or `lo ≤ x < hi` when
/// `hi_inclusive == false`, the paper's `[min, med[` cut pieces).
#[derive(Debug, Clone, PartialEq)]
pub struct RangePred {
    /// Column the constraint applies to.
    pub column: String,
    /// Lower bound (always inclusive, per SDL Definition 1).
    pub lo: Value,
    /// Upper bound.
    pub hi: Value,
    /// Whether the upper bound is inclusive.
    pub hi_inclusive: bool,
}

/// A set constraint `x ∈ {a0, …, aK}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetPred {
    /// Column the constraint applies to.
    pub column: String,
    /// Accepted values.
    pub values: Vec<Value>,
}

/// A physical predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum StorePredicate {
    /// Matches every row.
    True,
    /// Range scan.
    Range(RangePred),
    /// Set-membership scan.
    Set(SetPred),
    /// Conjunction of sub-predicates.
    And(Vec<StorePredicate>),
}

impl StorePredicate {
    /// Convenience constructor for a range predicate.
    pub fn range(column: impl Into<String>, lo: Value, hi: Value, hi_inclusive: bool) -> Self {
        StorePredicate::Range(RangePred {
            column: column.into(),
            lo,
            hi,
            hi_inclusive,
        })
    }

    /// Convenience constructor for a set predicate.
    pub fn set(column: impl Into<String>, values: Vec<Value>) -> Self {
        StorePredicate::Set(SetPred {
            column: column.into(),
            values,
        })
    }

    /// Conjunction, flattening nested `And`s and dropping `True`s.
    pub fn and(preds: Vec<StorePredicate>) -> Self {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                StorePredicate::True => {}
                StorePredicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => StorePredicate::True,
            1 => flat.pop().expect("len checked"),
            _ => StorePredicate::And(flat),
        }
    }

    /// Column names referenced by the predicate, in first-occurrence order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            StorePredicate::True => {}
            StorePredicate::Range(r) => {
                if !out.contains(&r.column.as_str()) {
                    out.push(&r.column);
                }
            }
            StorePredicate::Set(s) => {
                if !out.contains(&s.column.as_str()) {
                    out.push(&s.column);
                }
            }
            StorePredicate::And(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
        }
    }
}

/// Evaluate a range scan over a column, producing a fresh selection bitmap.
///
/// The scan is specialised per physical type so the hot loop works on the
/// native vector without per-row `Value` boxing.
pub fn eval_range(col: &Column, pred: &RangePred) -> StoreResult<Bitmap> {
    let n = col.len();
    let mut out = Bitmap::new(n);
    let validity = col.validity();
    match col.data() {
        ColumnData::Int(vals) => {
            let (lo, hi) = numeric_bounds(col, pred)?;
            scan_numeric(
                vals.iter().map(|&v| v as f64),
                lo,
                hi,
                pred.hi_inclusive,
                validity,
                &mut out,
            );
        }
        ColumnData::Date(vals) => {
            let (lo, hi) = numeric_bounds(col, pred)?;
            scan_numeric(
                vals.iter().map(|&v| v as f64),
                lo,
                hi,
                pred.hi_inclusive,
                validity,
                &mut out,
            );
        }
        ColumnData::Float(vals) => {
            let (lo, hi) = numeric_bounds(col, pred)?;
            scan_numeric(
                vals.iter().copied(),
                lo,
                hi,
                pred.hi_inclusive,
                validity,
                &mut out,
            );
        }
        ColumnData::Str(codes) => {
            // Lexicographic range over strings: precompute per-code verdicts
            // so the row loop is a table lookup.
            let lo = pred.lo.as_str().ok_or_else(|| type_err(col, &pred.lo))?;
            let hi = pred.hi.as_str().ok_or_else(|| type_err(col, &pred.hi))?;
            let verdict: Vec<bool> = col
                .dict()
                .iter()
                .map(|s| {
                    let s = s.as_str();
                    s >= lo && if pred.hi_inclusive { s <= hi } else { s < hi }
                })
                .collect();
            for (i, &code) in codes.iter().enumerate() {
                if validity.get(i) && verdict[code as usize] {
                    out.set(i);
                }
            }
        }
        ColumnData::Bool(vals) => {
            let lo = bool_of(col, &pred.lo)?;
            let hi = bool_of(col, &pred.hi)?;
            for (i, &v) in vals.iter().enumerate() {
                let upper_ok = if pred.hi_inclusive { v <= hi } else { !v & hi };
                if validity.get(i) && v >= lo && upper_ok {
                    out.set(i);
                }
            }
        }
    }
    Ok(out)
}

/// Evaluate a set-membership scan over a column.
pub fn eval_set(col: &Column, pred: &SetPred) -> StoreResult<Bitmap> {
    let n = col.len();
    let mut out = Bitmap::new(n);
    let validity = col.validity();
    match col.data() {
        ColumnData::Str(codes) => {
            // Translate wanted strings into dictionary codes once; rows then
            // test codes, not strings.
            let mut wanted = vec![false; col.dict().len()];
            for v in &pred.values {
                let s = v.as_str().ok_or_else(|| type_err(col, v))?;
                if let Some(code) = col.code_of(s) {
                    wanted[code as usize] = true;
                }
            }
            for (i, &code) in codes.iter().enumerate() {
                if validity.get(i) && wanted[code as usize] {
                    out.set(i);
                }
            }
        }
        ColumnData::Int(vals) => {
            let wanted = int_set(col, &pred.values)?;
            for (i, v) in vals.iter().enumerate() {
                if validity.get(i) && wanted.binary_search(v).is_ok() {
                    out.set(i);
                }
            }
        }
        ColumnData::Date(vals) => {
            let wanted = int_set(col, &pred.values)?;
            for (i, v) in vals.iter().enumerate() {
                if validity.get(i) && wanted.binary_search(v).is_ok() {
                    out.set(i);
                }
            }
        }
        ColumnData::Float(vals) => {
            let mut wanted: Vec<f64> = Vec::with_capacity(pred.values.len());
            for v in &pred.values {
                wanted.push(v.as_f64().ok_or_else(|| type_err(col, v))?);
            }
            wanted.sort_by(f64::total_cmp);
            for (i, v) in vals.iter().enumerate() {
                if validity.get(i) && wanted.binary_search_by(|w| w.total_cmp(v)).is_ok() {
                    out.set(i);
                }
            }
        }
        ColumnData::Bool(vals) => {
            let mut want_true = false;
            let mut want_false = false;
            for v in &pred.values {
                match v {
                    Value::Bool(true) => want_true = true,
                    Value::Bool(false) => want_false = true,
                    other => return Err(type_err(col, other)),
                }
            }
            for (i, &v) in vals.iter().enumerate() {
                if validity.get(i) && ((v && want_true) || (!v && want_false)) {
                    out.set(i);
                }
            }
        }
    }
    Ok(out)
}

fn scan_numeric(
    values: impl Iterator<Item = f64>,
    lo: f64,
    hi: f64,
    hi_inclusive: bool,
    validity: &Bitmap,
    out: &mut Bitmap,
) {
    for (i, v) in values.enumerate() {
        let upper_ok = if hi_inclusive { v <= hi } else { v < hi };
        if v >= lo && upper_ok && validity.get(i) {
            out.set(i);
        }
    }
}

fn bool_of(col: &Column, v: &Value) -> StoreResult<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(type_err(col, other)),
    }
}

fn numeric_bounds(col: &Column, pred: &RangePred) -> StoreResult<(f64, f64)> {
    let lo = pred.lo.as_f64().ok_or_else(|| type_err(col, &pred.lo))?;
    let hi = pred.hi.as_f64().ok_or_else(|| type_err(col, &pred.hi))?;
    Ok((lo, hi))
}

fn int_set(col: &Column, values: &[Value]) -> StoreResult<Vec<i64>> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let x = match v {
            Value::Int(x) | Value::Date(x) => *x,
            other => return Err(type_err(col, other)),
        };
        out.push(x);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

fn type_err(col: &Column, v: &Value) -> StoreError {
    StoreError::TypeMismatch {
        column: col.name().to_string(),
        expected: col.data_type().name().into(),
        found: v.data_type().name().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    fn int_col(values: &[i64]) -> Column {
        let mut c = Column::new("x", DataType::Int);
        for &v in values {
            c.push(Some(Value::Int(v))).unwrap();
        }
        c
    }

    fn str_col(values: &[&str]) -> Column {
        let mut c = Column::new("s", DataType::Str);
        for &v in values {
            c.push(Some(Value::str(v))).unwrap();
        }
        c
    }

    #[test]
    fn range_inclusive_and_half_open() {
        let c = int_col(&[1, 2, 3, 4, 5]);
        let closed = RangePred {
            column: "x".into(),
            lo: Value::Int(2),
            hi: Value::Int(4),
            hi_inclusive: true,
        };
        assert_eq!(eval_range(&c, &closed).unwrap().count_ones(), 3);
        let open = RangePred {
            hi_inclusive: false,
            ..closed
        };
        assert_eq!(eval_range(&c, &open).unwrap().count_ones(), 2);
    }

    #[test]
    fn range_skips_nulls() {
        let mut c = Column::new("x", DataType::Int);
        c.push(Some(Value::Int(1))).unwrap();
        c.push(None).unwrap();
        c.push(Some(Value::Int(3))).unwrap();
        let p = RangePred {
            column: "x".into(),
            lo: Value::Int(0),
            hi: Value::Int(10),
            hi_inclusive: true,
        };
        assert_eq!(eval_range(&c, &p).unwrap().count_ones(), 2);
    }

    #[test]
    fn range_cross_type_numeric_bounds() {
        let c = int_col(&[10, 20, 30]);
        let p = RangePred {
            column: "x".into(),
            lo: Value::Float(15.0),
            hi: Value::Float(30.0),
            hi_inclusive: true,
        };
        assert_eq!(eval_range(&c, &p).unwrap().count_ones(), 2);
    }

    #[test]
    fn range_on_strings_is_lexicographic() {
        let c = str_col(&["amsterdam", "bantam", "surat", "zeeland"]);
        let p = RangePred {
            column: "s".into(),
            lo: Value::str("b"),
            hi: Value::str("t"),
            hi_inclusive: false,
        };
        let sel = eval_range(&c, &p).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn range_type_error_on_string_column_with_int_bounds() {
        let c = str_col(&["a"]);
        let p = RangePred {
            column: "s".into(),
            lo: Value::Int(1),
            hi: Value::Int(2),
            hi_inclusive: true,
        };
        assert!(eval_range(&c, &p).is_err());
    }

    #[test]
    fn set_on_strings_uses_dictionary() {
        let c = str_col(&["fluit", "jacht", "fluit", "pinas"]);
        let p = SetPred {
            column: "s".into(),
            values: vec![Value::str("fluit"), Value::str("pinas"), Value::str("nope")],
        };
        let sel = eval_set(&c, &p).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn set_on_ints_and_floats() {
        let c = int_col(&[1, 2, 3, 2]);
        let p = SetPred {
            column: "x".into(),
            values: vec![Value::Int(2), Value::Int(3)],
        };
        assert_eq!(eval_set(&c, &p).unwrap().count_ones(), 3);

        let mut f = Column::new("f", DataType::Float);
        for v in [1.5, 2.5, 3.5] {
            f.push(Some(Value::Float(v))).unwrap();
        }
        let p = SetPred {
            column: "f".into(),
            values: vec![Value::Float(2.5)],
        };
        assert_eq!(eval_set(&f, &p).unwrap().count_ones(), 1);
    }

    #[test]
    fn set_on_bool() {
        let mut c = Column::new("b", DataType::Bool);
        for v in [true, false, true] {
            c.push(Some(Value::Bool(v))).unwrap();
        }
        let p = SetPred {
            column: "b".into(),
            values: vec![Value::Bool(true)],
        };
        assert_eq!(eval_set(&c, &p).unwrap().count_ones(), 2);
    }

    #[test]
    fn and_flattens_and_drops_true() {
        let p = StorePredicate::and(vec![
            StorePredicate::True,
            StorePredicate::and(vec![
                StorePredicate::range("a", Value::Int(0), Value::Int(1), true),
                StorePredicate::True,
            ]),
            StorePredicate::set("b", vec![Value::Int(1)]),
        ]);
        match &p {
            StorePredicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn and_of_nothing_is_true() {
        assert_eq!(
            StorePredicate::and(vec![StorePredicate::True]),
            StorePredicate::True
        );
    }

    #[test]
    fn empty_set_predicate_matches_nothing() {
        let c = str_col(&["a", "b"]);
        let p = SetPred {
            column: "s".into(),
            values: vec![],
        };
        assert_eq!(eval_set(&c, &p).unwrap().count_ones(), 0);
    }
}
