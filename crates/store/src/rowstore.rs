//! Row-oriented baseline engine.
//!
//! Implements the same [`Backend`] contract as the columnar [`Table`], but
//! stores tuples as `Vec<Row>` — each row an owned vector of values. Every
//! predicate scan therefore touches entire tuples (all attributes), while
//! the columnar engine touches only the attribute under scan. This is the
//! textbook access-pattern argument behind the paper's §5.1 claim that
//! column stores suit Charles' workload; experiment E7 measures it.

use crate::backend::{Backend, BackendStats};
use crate::bitmap::Bitmap;
use crate::error::{StoreError, StoreResult};
use crate::predicate::{RangePred, SetPred, StorePredicate};
use crate::sample::reservoir_sample;
use crate::schema::Schema;
use crate::stats::{exact_median, mean_and_var_of, quantile_value, FrequencyTable};
use crate::table::Table;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// One tuple; `None` encodes SQL NULL.
pub type Row = Vec<Option<Value>>;

/// A row-major relation.
#[derive(Debug)]
pub struct RowTable {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    scans: AtomicU64,
    counts: AtomicU64,
    medians: AtomicU64,
}

impl Clone for RowTable {
    fn clone(&self) -> RowTable {
        RowTable {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            scans: AtomicU64::new(self.scans.load(AtomicOrdering::Relaxed)),
            counts: AtomicU64::new(self.counts.load(AtomicOrdering::Relaxed)),
            medians: AtomicU64::new(self.medians.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl RowTable {
    /// Build directly from a schema and rows (validated).
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> StoreResult<RowTable> {
        for row in &rows {
            if row.len() != schema.arity() {
                return Err(StoreError::ArityMismatch {
                    expected: schema.arity(),
                    found: row.len(),
                });
            }
            for (meta, v) in schema.columns().iter().zip(row) {
                if let Some(v) = v {
                    if v.data_type() != meta.ty {
                        return Err(StoreError::TypeMismatch {
                            column: meta.name.clone(),
                            expected: meta.ty.name().into(),
                            found: v.data_type().name().into(),
                        });
                    }
                }
            }
        }
        Ok(RowTable {
            name: name.into(),
            schema,
            rows,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        })
    }

    /// Materialise a row-store copy of a columnar table — used by the
    /// backend-comparison experiments so both engines hold identical data.
    pub fn from_table(table: &Table) -> RowTable {
        let schema = table.schema().clone();
        let names: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
        let mut rows = Vec::with_capacity(table.len());
        for i in 0..table.len() {
            let mut row = Vec::with_capacity(schema.arity());
            for name in &names {
                row.push(table.value(i, name).expect("column exists"));
            }
            rows.push(row);
        }
        RowTable {
            name: format!("{}_rowstore", table.name()),
            schema,
            rows,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn col_index(&self, name: &str) -> StoreResult<usize> {
        self.schema
            .index_of(name)
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))
    }

    fn match_range(&self, row: &Row, idx: usize, pred: &RangePred) -> bool {
        let Some(v) = &row[idx] else { return false };
        let ge_lo = matches!(v.try_cmp(&pred.lo), Ok(Ordering::Greater | Ordering::Equal));
        let le_hi = match v.try_cmp(&pred.hi) {
            Ok(Ordering::Less) => true,
            Ok(Ordering::Equal) => pred.hi_inclusive,
            _ => false,
        };
        ge_lo && le_hi
    }

    fn match_set(&self, row: &Row, idx: usize, pred: &SetPred) -> bool {
        let Some(v) = &row[idx] else { return false };
        pred.values
            .iter()
            .any(|w| matches!(v.try_cmp(w), Ok(Ordering::Equal)))
    }

    fn matches(&self, row: &Row, pred: &StorePredicate) -> StoreResult<bool> {
        Ok(match pred {
            StorePredicate::True => true,
            StorePredicate::Range(r) => self.match_range(row, self.col_index(&r.column)?, r),
            StorePredicate::Set(s) => self.match_set(row, self.col_index(&s.column)?, s),
            StorePredicate::And(ps) => {
                for p in ps {
                    if !self.matches(row, p)? {
                        return Ok(false);
                    }
                }
                true
            }
        })
    }

    fn gather_f64(&self, column: &str, sel: &Bitmap) -> StoreResult<Vec<f64>> {
        let idx = self.col_index(column)?;
        let ty = self.schema.columns()[idx].ty;
        if !ty.is_numeric() {
            return Err(StoreError::TypeMismatch {
                column: column.to_string(),
                expected: "numeric".into(),
                found: ty.name().into(),
            });
        }
        let mut out = Vec::new();
        for i in sel.iter_ones() {
            if let Some(v) = &self.rows[i][idx] {
                if let Some(x) = v.as_f64() {
                    // NaN is treated as null (matches the columnar engine's
                    // gather): `RowTable::new` performs no NaN screening, so
                    // a poisoned Float row must not yield NaN medians.
                    if !x.is_nan() {
                        out.push(x);
                    }
                }
            }
        }
        Ok(out)
    }
}

impl Backend for RowTable {
    fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap> {
        self.scans.fetch_add(1, AtomicOrdering::Relaxed);
        let mut out = Bitmap::new(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if self.matches(row, pred)? {
                out.set(i);
            }
        }
        Ok(out)
    }

    fn count(&self, pred: &StorePredicate) -> StoreResult<usize> {
        // See `Table::count`: logical counts are tallied in their own
        // counter on top of the physical scan `eval` records.
        self.counts.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(self.eval(pred)?.count_ones())
    }

    fn not_null(&self, column: &str) -> StoreResult<Bitmap> {
        let idx = self.col_index(column)?;
        let mut out = Bitmap::new(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if row[idx].is_some() {
                out.set(i);
            }
        }
        Ok(out)
    }

    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let mut buf = self.gather_f64(column, sel)?;
        if buf.is_empty() {
            return Ok(None);
        }
        Ok(Some(Value::Float(exact_median(&mut buf)?)))
    }

    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let idx = self.col_index(column)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = reservoir_sample(sel, sample_size, &mut rng);
        let mut buf = Vec::with_capacity(rows.len());
        for i in rows {
            if let Some(v) = self.rows[i][idx].as_ref().and_then(Value::as_f64) {
                if !v.is_nan() {
                    buf.push(v);
                }
            }
        }
        if buf.is_empty() {
            return Ok(None);
        }
        Ok(Some(Value::Float(exact_median(&mut buf)?)))
    }

    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let mut buf = self.gather_f64(column, sel)?;
        if buf.is_empty() {
            return Ok(None);
        }
        Ok(Some(Value::Float(quantile_value(&mut buf, q)?)))
    }

    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>> {
        let idx = self.col_index(column)?;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in sel.iter_ones() {
            let Some(v) = &self.rows[i][idx] else {
                continue;
            };
            if min
                .as_ref()
                .map(|m| matches!(v.try_cmp(m), Ok(Ordering::Less)))
                .unwrap_or(true)
            {
                min = Some(v.clone());
            }
            if max
                .as_ref()
                .map(|m| matches!(v.try_cmp(m), Ok(Ordering::Greater)))
                .unwrap_or(true)
            {
                max = Some(v.clone());
            }
        }
        Ok(min.zip(max))
    }

    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>> {
        let buf = self.gather_f64(column, sel)?;
        Ok(mean_and_var_of(&buf))
    }

    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>> {
        let idx = self.col_index(column)?;
        let mut best: Option<Value> = None;
        for i in sel.iter_ones() {
            let Some(x) = &self.rows[i][idx] else {
                continue;
            };
            if !matches!(x.try_cmp(v), Ok(Ordering::Greater)) {
                continue;
            }
            if best
                .as_ref()
                .map(|b| matches!(x.try_cmp(b), Ok(Ordering::Less)))
                .unwrap_or(true)
            {
                best = Some(x.clone());
            }
        }
        Ok(best)
    }

    fn frequencies(
        &self,
        column: &str,
        sel: &Bitmap,
    ) -> StoreResult<(FrequencyTable, Vec<String>)> {
        self.scans.fetch_add(1, AtomicOrdering::Relaxed);
        let idx = self.col_index(column)?;
        let ty = self.schema.columns()[idx].ty;
        if ty.is_numeric() {
            return Err(StoreError::TypeMismatch {
                column: column.to_string(),
                expected: "nominal".into(),
                found: ty.name().into(),
            });
        }
        // Build an ad-hoc dictionary in first-occurrence order (mirrors the
        // columnar engine's interning order for identical data).
        let mut dict: Vec<String> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for i in sel.iter_ones() {
            let Some(v) = &self.rows[i][idx] else {
                continue;
            };
            let key = v.render();
            match dict.iter().position(|d| *d == key) {
                Some(p) => counts[p] += 1,
                None => {
                    dict.push(key);
                    counts.push(1);
                }
            }
        }
        Ok((FrequencyTable::from_counts(counts), dict))
    }

    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize> {
        let idx = self.col_index(column)?;
        let ty = self.schema.columns()[idx].ty;
        if ty.is_numeric() {
            let mut buf = self.gather_f64(column, sel)?;
            buf.sort_by(f64::total_cmp);
            buf.dedup();
            Ok(buf.len())
        } else {
            let (ft, _) = self.frequencies(column, sel)?;
            Ok(ft.cardinality())
        }
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            scans: self.scans.load(AtomicOrdering::Relaxed),
            counts: self.counts.load(AtomicOrdering::Relaxed),
            medians: self.medians.load(AtomicOrdering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.scans.store(0, AtomicOrdering::Relaxed);
        self.counts.store(0, AtomicOrdering::Relaxed);
        self.medians.store(0, AtomicOrdering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::datatype::DataType;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for (x, k) in [(1, "a"), (2, "b"), (3, "a"), (4, "c"), (5, "a")] {
            b.push_row(vec![Value::Int(x), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn row_and_column_engines_agree_on_counts() {
        let col = sample_table();
        let row = RowTable::from_table(&col);
        for pred in [
            StorePredicate::True,
            StorePredicate::range("x", Value::Int(2), Value::Int(4), true),
            StorePredicate::range("x", Value::Int(2), Value::Int(4), false),
            StorePredicate::set("k", vec![Value::str("a")]),
            StorePredicate::and(vec![
                StorePredicate::range("x", Value::Int(1), Value::Int(4), true),
                StorePredicate::set("k", vec![Value::str("a")]),
            ]),
        ] {
            assert_eq!(
                col.count(&pred).unwrap(),
                row.count(&pred).unwrap(),
                "pred: {pred:?}"
            );
        }
    }

    #[test]
    fn row_and_column_engines_agree_on_medians() {
        let col = sample_table();
        let row = RowTable::from_table(&col);
        let sel_c = col
            .eval(&StorePredicate::set("k", vec![Value::str("a")]))
            .unwrap();
        let sel_r = row
            .eval(&StorePredicate::set("k", vec![Value::str("a")]))
            .unwrap();
        let mc = col.median("x", &sel_c).unwrap().unwrap().as_f64().unwrap();
        let mr = row.median("x", &sel_r).unwrap().unwrap().as_f64().unwrap();
        assert_eq!(mc, mr);
    }

    #[test]
    fn row_and_column_engines_agree_on_frequencies() {
        let col = sample_table();
        let row = RowTable::from_table(&col);
        let (fc, dc) = col.frequencies("k", &col.all_rows()).unwrap();
        let (fr, dr) = row
            .frequencies("k", &Bitmap::ones(row.row_count()))
            .unwrap();
        let mut c: Vec<(String, usize)> = fc
            .entries()
            .iter()
            .map(|&(code, n)| (dc[code as usize].clone(), n))
            .collect();
        let mut r: Vec<(String, usize)> = fr
            .entries()
            .iter()
            .map(|&(code, n)| (dr[code as usize].clone(), n))
            .collect();
        c.sort();
        r.sort();
        assert_eq!(c, r);
    }

    #[test]
    fn nulls_never_match() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let t = RowTable::new("t", schema, vec![vec![Some(Value::Int(1))], vec![None]]).unwrap();
        let sel = t
            .eval(&StorePredicate::range(
                "x",
                Value::Int(0),
                Value::Int(9),
                true,
            ))
            .unwrap();
        assert_eq!(sel.count_ones(), 1);
    }

    #[test]
    fn constructor_validates_rows() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        assert!(RowTable::new("t", schema.clone(), vec![vec![Some(Value::str("bad"))]]).is_err());
        assert!(RowTable::new("t", schema, vec![vec![]]).is_err());
    }

    #[test]
    fn nan_rows_do_not_poison_medians() {
        // RowTable::new accepts Value::Float(NaN) (only the type is
        // checked), so NaN really can reach the median paths here.
        let schema = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let rows: Vec<Row> = [1.0, f64::NAN, 3.0, f64::NAN, 5.0]
            .iter()
            .map(|&v| vec![Some(Value::Float(v))])
            .collect();
        let t = RowTable::new("t", schema, rows).unwrap();
        let all = Bitmap::ones(t.row_count());
        let med = t.median("x", &all).unwrap().unwrap().as_f64().unwrap();
        assert_eq!(med, 3.0, "NaN must be skipped like null");
        let q = t.quantile("x", &all, 1.0).unwrap().unwrap();
        assert_eq!(q.as_f64().unwrap(), 5.0);
        let sm = t
            .sampled_median("x", &all, 8, 11)
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(!sm.is_nan());
        let (mean, _) = t.mean_and_var("x", &all).unwrap().unwrap();
        assert_eq!(mean, 3.0);
        assert_eq!(t.distinct_count("x", &all).unwrap(), 3);
    }

    #[test]
    fn count_counter_attribution() {
        let col = sample_table();
        let row = RowTable::from_table(&col);
        row.reset_stats();
        let _ = row.count(&StorePredicate::True);
        let _ = row.eval(&StorePredicate::True);
        let s = row.stats();
        assert_eq!(s.counts, 1);
        assert_eq!(s.scans, 2);
    }

    #[test]
    fn min_max_and_distinct() {
        let col = sample_table();
        let row = RowTable::from_table(&col);
        let all = Bitmap::ones(row.row_count());
        let (lo, hi) = row.min_max("x", &all).unwrap().unwrap();
        assert_eq!((lo, hi), (Value::Int(1), Value::Int(5)));
        assert_eq!(row.distinct_count("k", &all).unwrap(), 3);
        assert_eq!(row.distinct_count("x", &all).unwrap(), 5);
    }
}
