//! Sampling strategies (paper §5.2: "the implementation of Charles could
//! benefit from the incorporation of sampling strategies. The calculation
//! of medians is a major bottleneck. However, not all tuples are necessary
//! to give good results.").

use crate::bitmap::Bitmap;
use rand::Rng;

/// Algorithm R reservoir sampling over the set bits of a selection:
/// returns up to `k` row indices drawn uniformly without replacement.
pub fn reservoir_sample(sel: &Bitmap, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut reservoir: Vec<usize> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (seen, idx) in sel.iter_ones().enumerate() {
        if seen < k {
            reservoir.push(idx);
        } else {
            let j = rng.gen_range(0..=seen);
            if j < k {
                reservoir[j] = idx;
            }
        }
    }
    reservoir
}

/// Bernoulli sampling: keep each selected row independently with
/// probability `p`. Returns a sub-bitmap of `sel`.
pub fn bernoulli_sample(sel: &Bitmap, p: f64, rng: &mut impl Rng) -> Bitmap {
    let mut out = Bitmap::new(sel.len());
    if p <= 0.0 {
        return out;
    }
    for idx in sel.iter_ones() {
        if p >= 1.0 || rng.gen_bool(p) {
            out.set(idx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reservoir_returns_k_when_enough() {
        let sel = Bitmap::ones(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let s = reservoir_sample(&sel, 50, &mut rng);
        assert_eq!(s.len(), 50);
        // All sampled indices must come from the selection.
        assert!(s.iter().all(|&i| sel.get(i)));
        // Without replacement.
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn reservoir_returns_all_when_small() {
        let sel = Bitmap::from_indices(100, [3, 14, 15]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = reservoir_sample(&sel, 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![3, 14, 15]);
    }

    #[test]
    fn reservoir_k_zero() {
        let sel = Bitmap::ones(10);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(reservoir_sample(&sel, 0, &mut rng).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Each of 100 rows should appear ~ k/n of the time across trials.
        let sel = Bitmap::ones(100);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = vec![0usize; 100];
        let trials = 2000;
        for _ in 0..trials {
            for idx in reservoir_sample(&sel, 10, &mut rng) {
                hits[idx] += 1;
            }
        }
        let expected = trials as f64 * 10.0 / 100.0; // 200
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64) > expected * 0.5 && (h as f64) < expected * 1.5,
                "row {i} sampled {h} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn bernoulli_bounds() {
        let sel = Bitmap::ones(500);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(bernoulli_sample(&sel, 0.0, &mut rng).count_ones(), 0);
        assert_eq!(bernoulli_sample(&sel, 1.0, &mut rng).count_ones(), 500);
        let half = bernoulli_sample(&sel, 0.5, &mut rng).count_ones();
        assert!((150..=350).contains(&half), "got {half}");
    }

    #[test]
    fn bernoulli_respects_selection() {
        let sel = Bitmap::from_indices(100, [10, 20, 30]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = bernoulli_sample(&sel, 1.0, &mut rng);
        assert!(out.is_subset_of(&sel));
        assert_eq!(out.count_ones(), 3);
    }
}
