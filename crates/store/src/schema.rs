//! Relation schemas: ordered, named, typed columns.

use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use std::fmt;

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (unique within a schema).
    pub name: String,
    /// Logical type.
    pub ty: DataType,
}

/// An ordered set of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Build a schema from `(name, type)` pairs, rejecting duplicates.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> StoreResult<Schema> {
        let mut s = Schema::new();
        for (name, ty) in pairs {
            s.add(name, *ty)?;
        }
        Ok(s)
    }

    /// Append a column definition.
    pub fn add(&mut self, name: &str, ty: DataType) -> StoreResult<()> {
        if self.index_of(name).is_some() {
            return Err(StoreError::DuplicateColumn(name.to_string()));
        }
        self.columns.push(ColumnMeta {
            name: name.to_string(),
            ty,
        });
        Ok(())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Metadata of a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Whether the schema has a column of this name. Convenience for
    /// admission-time validation (the SDL analyzer asks this for every
    /// attribute a context mentions).
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Type of a column, as a result (for operations that require it).
    pub fn type_of(&self, name: &str) -> StoreResult<DataType> {
        self.column(name)
            .map(|c| c.ty)
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))
    }

    /// All column metadata, in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// All column names, in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_and_lookup() {
        let s = Schema::from_pairs(&[("tonnage", DataType::Int), ("kind", DataType::Str)]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("kind"), Some(1));
        assert_eq!(s.type_of("tonnage").unwrap(), DataType::Int);
        assert!(s.type_of("nope").is_err());
        assert!(s.contains("kind"));
        assert!(!s.contains("nope"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Str)]).unwrap_err();
        assert_eq!(err, StoreError::DuplicateColumn("a".into()));
    }

    #[test]
    fn display_format() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Date)]).unwrap();
        assert_eq!(s.to_string(), "(a: int, b: date)");
    }

    #[test]
    fn names_in_declaration_order() {
        let s = Schema::from_pairs(&[("z", DataType::Int), ("a", DataType::Int)]).unwrap();
        assert_eq!(s.names(), vec!["z", "a"]);
    }
}
