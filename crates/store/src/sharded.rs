//! Row-range sharded backend: one logical relation, N physical shards.
//!
//! The paper reduces Charles's database load to "median calculations and
//! counts over predicates" (§5.1) and names medians the major bottleneck
//! (§5.2). [`ShardedTable`] scales both past a single dense [`Table`] by
//! splitting it into contiguous row-range shards and evaluating
//! shard-parallel (one worker per shard via `charles-parallel` when the
//! `parallel` feature is on; the identical code runs sequentially when it
//! is off):
//!
//! * `eval` / `count` / `not_null` evaluate each shard independently and
//!   glue the per-shard selection bitmaps back together in shard order
//!   ([`Bitmap::concat`]), so the result is bit-for-bit the single-table
//!   bitmap;
//! * exact `median` / `quantile` gather-and-sort per shard in parallel,
//!   then a k-way order-statistic merge over the sorted runs
//!   ([`crate::stats::median_of_sorted_runs`]) recovers exactly the
//!   single-table statistic — same values, same midpoint arithmetic,
//!   bitwise identical;
//! * `sampled_median` derives one sub-seed per shard from the caller's
//!   seed (a splitmix64 step) and apportions the sample size across
//!   shards by selection count, so results are deterministic for a fixed
//!   shard count — but intentionally *not* identical to the unsharded
//!   sample (a different, equally valid draw).
//!
//! Operation counters are tallied once per **logical** operation at the
//! sharded level — never once per shard — so a 4-shard `count` still
//! records one count, not four. (The wrapped shard tables keep their own
//! internal counters, which this backend never reads.)

use crate::backend::{Backend, BackendStats};
use crate::bitmap::Bitmap;
use crate::error::{StoreError, StoreResult};
use crate::predicate::StorePredicate;
use crate::sample::reservoir_sample;
use crate::schema::Schema;
use crate::stats::{
    exact_median, mean_and_var_of, median_of_sorted_runs, quantile_of_sorted_runs, FrequencyTable,
};
use crate::table::Table;
use crate::value::{numeric_value, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

#[cfg(feature = "parallel")]
use charles_parallel::par_map;

/// Sequential stand-in with the same contract as
/// `charles_parallel::par_map` — literally `items.iter().map(f).collect()`,
/// which is also what the threaded version computes (order-preserving,
/// pure `f`), so the feature flag cannot change any result.
#[cfg(not(feature = "parallel"))]
fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    items.iter().map(f).collect()
}

/// A [`Table`] split into N contiguous row-range shards behind the same
/// [`Backend`] contract.
///
/// Row `i` of the logical relation lives in the shard whose range
/// contains `i`; all bitmaps exchanged through the trait are table-wide,
/// and the shard structure is invisible to callers (the advisor produces
/// bitwise-identical output over `ShardedTable` and `Table`).
#[derive(Debug)]
pub struct ShardedTable {
    name: String,
    schema: Schema,
    shards: Vec<Table>,
    /// Start row of shard `k`; `offsets[0] == 0`, strictly ascending.
    offsets: Vec<usize>,
    rows: usize,
    scans: AtomicU64,
    counts: AtomicU64,
    medians: AtomicU64,
}

/// One splitmix64 scramble of `(seed, shard)`: the per-shard sub-seed for
/// `sampled_median`. Deterministic, and distinct shards get decorrelated
/// streams even for adjacent seeds.
fn sub_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed.wrapping_add(shard.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedTable {
    /// Split `table` into `shards` contiguous row ranges of near-equal
    /// size (the first `rows % shards` ranges are one row longer). The
    /// shard count is clamped to `1..=rows` (an empty table keeps one
    /// empty shard), so asking for more shards than rows is safe.
    pub fn from_table(table: &Table, shards: usize) -> ShardedTable {
        let rows = table.len();
        let n = shards.clamp(1, rows.max(1));
        let mut parts = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        for k in 0..n {
            let start = k * rows / n;
            let end = (k + 1) * rows / n;
            let columns: Vec<_> = table
                .columns()
                .iter()
                .map(|c| c.slice(start, end))
                .collect();
            offsets.push(start);
            parts.push(Table::from_parts(
                format!("{}[{start}..{end}]", table.name()),
                table.schema().clone(),
                columns,
            ));
        }
        ShardedTable {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            shards: parts,
            offsets,
            rows,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        }
    }

    /// Logical table name (the wrapped table's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Row range `[start, end)` of shard `k`.
    pub fn shard_bounds(&self, k: usize) -> (usize, usize) {
        let start = self.offsets[k];
        let end = start + self.shards[k].len();
        (start, end)
    }

    /// Restrict a table-wide selection to each shard's row range (local
    /// row numbering), in shard order.
    fn shard_sels(&self, sel: &Bitmap) -> Vec<Bitmap> {
        (0..self.shards.len())
            .map(|k| {
                let (start, end) = self.shard_bounds(k);
                sel.slice(start, end)
            })
            .collect()
    }

    /// Shard-local `(shard, selection)` work list for a table-wide
    /// selection.
    fn shard_work<'a>(&'a self, sel: &Bitmap) -> Vec<(&'a Table, Bitmap)> {
        self.shards.iter().zip(self.shard_sels(sel)).collect()
    }

    /// The column's declared type, with the same error as `Table`.
    fn column_type(&self, column: &str) -> StoreResult<crate::datatype::DataType> {
        self.schema
            .index_of(column)
            .map(|i| self.schema.columns()[i].ty)
            .ok_or_else(|| StoreError::UnknownColumn(column.to_string()))
    }

    /// The column's type, required numeric — the same up-front check (and
    /// error) as `Table::median`/`sampled_median`. It must run before any
    /// early return on empty selections so that e.g. a median over a
    /// nominal column errors rather than answering `None`.
    fn numeric_column_type(&self, column: &str) -> StoreResult<crate::datatype::DataType> {
        let ty = self.column_type(column)?;
        if !ty.is_numeric() {
            return Err(StoreError::TypeMismatch {
                column: column.to_string(),
                expected: "numeric".into(),
                found: ty.name().into(),
            });
        }
        Ok(ty)
    }

    /// Per-shard numeric gathers (NaN and null skipped), in shard = row
    /// order, one worker per shard. `sort` additionally sorts each run in
    /// its worker — the parallel half of the k-way median merge.
    fn gather_runs(&self, column: &str, sel: &Bitmap, sort: bool) -> StoreResult<Vec<Vec<f64>>> {
        let work = self.shard_work(sel);
        par_map(&work, |(shard, local)| {
            let mut buf = Vec::new();
            shard.column(column)?.gather_f64(local, &mut buf)?;
            if sort {
                buf.sort_by(f64::total_cmp);
            }
            Ok(buf)
        })
        .into_iter()
        .collect()
    }
}

impl Backend for ShardedTable {
    fn row_count(&self) -> usize {
        self.rows
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap> {
        match pred {
            StorePredicate::True => Ok(Bitmap::ones(self.rows)),
            StorePredicate::Range(_) | StorePredicate::Set(_) => {
                // One scan tallied per leaf, never per shard: the shards
                // evaluate the leaf in parallel and the per-shard bitmaps
                // glue back together in shard order.
                self.scans.fetch_add(1, AtomicOrdering::Relaxed);
                let parts: StoreResult<Vec<Bitmap>> =
                    par_map(&self.shards, |shard| shard.eval(pred))
                        .into_iter()
                        .collect();
                Ok(Bitmap::concat(parts?.iter()))
            }
            StorePredicate::And(ps) => {
                // Conjunctions combine at the *merged* level — the same
                // loop as `Table::eval`, including the early exit on empty
                // intermediates, so the scan tally (which leaves actually
                // ran) matches the unsharded table exactly.
                let mut acc: Option<Bitmap> = None;
                for p in ps {
                    let sel = self.eval(p)?;
                    acc = Some(match acc {
                        None => sel,
                        Some(mut a) => {
                            a.and_inplace(&sel);
                            a
                        }
                    });
                    if acc.as_ref().map(Bitmap::none).unwrap_or(false) {
                        break;
                    }
                }
                Ok(acc.unwrap_or_else(|| Bitmap::ones(self.rows)))
            }
        }
    }

    fn count(&self, pred: &StorePredicate) -> StoreResult<usize> {
        self.counts.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(self.eval(pred)?.count_ones())
    }

    fn not_null(&self, column: &str) -> StoreResult<Bitmap> {
        let parts: StoreResult<Vec<Bitmap>> = par_map(&self.shards, |shard| shard.not_null(column))
            .into_iter()
            .collect();
        Ok(Bitmap::concat(parts?.iter()))
    }

    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let ty = self.numeric_column_type(column)?;
        let runs = self.gather_runs(column, sel, true)?;
        if runs.iter().all(Vec::is_empty) {
            return Ok(None);
        }
        let med = median_of_sorted_runs(&runs)?;
        Ok(Some(numeric_value(ty, med)))
    }

    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let ty = self.numeric_column_type(column)?;
        // Apportion the sample across shards proportionally to each
        // shard's selected-row count (largest-remainder rounding, ties to
        // the lower shard index), so the combined draw stays close to a
        // uniform sample of the whole selection.
        let sels = self.shard_sels(sel);
        let picked: Vec<usize> = sels.iter().map(Bitmap::count_ones).collect();
        let total: usize = picked.iter().sum();
        if total == 0 || sample_size == 0 {
            return Ok(None);
        }
        let k = sample_size.min(total);
        let mut share: Vec<usize> = picked.iter().map(|&c| k * c / total).collect();
        let leftover = k - share.iter().sum::<usize>();
        let mut by_rem: Vec<usize> = (0..picked.len())
            .filter(|&i| !(k * picked[i]).is_multiple_of(total))
            .collect();
        by_rem.sort_by_key(|&i| (std::cmp::Reverse(k * picked[i] % total), i));
        for &i in by_rem.iter().take(leftover) {
            share[i] += 1;
        }

        let work: Vec<(usize, (&Table, Bitmap))> =
            self.shards.iter().zip(sels).enumerate().collect();
        let bufs: StoreResult<Vec<Vec<f64>>> = par_map(&work, |(i, (shard, local))| {
            let mut rng = StdRng::seed_from_u64(sub_seed(seed, *i as u64));
            let rows = reservoir_sample(local, share[*i], &mut rng);
            let col = shard.column(column)?;
            let mut buf = Vec::with_capacity(rows.len());
            for r in rows {
                if let Some(v) = col.get(r).and_then(|v| v.as_f64()) {
                    if !v.is_nan() {
                        buf.push(v);
                    }
                }
            }
            Ok(buf)
        })
        .into_iter()
        .collect();
        let mut combined: Vec<f64> = bufs?.into_iter().flatten().collect();
        if combined.is_empty() {
            return Ok(None);
        }
        let med = exact_median(&mut combined)?;
        Ok(Some(numeric_value(ty, med)))
    }

    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>> {
        self.medians.fetch_add(1, AtomicOrdering::Relaxed);
        let ty = self.column_type(column)?;
        let runs = self.gather_runs(column, sel, true)?;
        if runs.iter().all(Vec::is_empty) {
            return Ok(None);
        }
        let v = quantile_of_sorted_runs(&runs, q)?;
        Ok(Some(numeric_value(ty, v)))
    }

    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>> {
        let work = self.shard_work(sel);
        let parts: StoreResult<Vec<Option<(Value, Value)>>> =
            par_map(&work, |(shard, local)| shard.min_max(column, local))
                .into_iter()
                .collect();
        let mut acc: Option<(Value, Value)> = None;
        for (lo, hi) in parts?.into_iter().flatten() {
            acc = Some(match acc {
                None => (lo, hi),
                Some((alo, ahi)) => (
                    if matches!(lo.try_cmp(&alo), Ok(Ordering::Less)) {
                        lo
                    } else {
                        alo
                    },
                    if matches!(hi.try_cmp(&ahi), Ok(Ordering::Greater)) {
                        hi
                    } else {
                        ahi
                    },
                ),
            });
        }
        Ok(acc)
    }

    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>> {
        let work = self.shard_work(sel);
        let parts: StoreResult<Vec<Option<Value>>> =
            par_map(&work, |(shard, local)| shard.next_above(column, local, v))
                .into_iter()
                .collect();
        let mut best: Option<Value> = None;
        for cand in parts?.into_iter().flatten() {
            if best
                .as_ref()
                .map(|b| matches!(cand.try_cmp(b), Ok(Ordering::Less)))
                .unwrap_or(true)
            {
                best = Some(cand);
            }
        }
        Ok(best)
    }

    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>> {
        // Gather per shard, fold once over the concatenation in shard =
        // row order: the identical summation order (and therefore the
        // identical float result) as the unsharded table.
        let runs = self.gather_runs(column, sel, false)?;
        let buf: Vec<f64> = runs.into_iter().flatten().collect();
        Ok(mean_and_var_of(&buf))
    }

    fn frequencies(
        &self,
        column: &str,
        sel: &Bitmap,
    ) -> StoreResult<(FrequencyTable, Vec<String>)> {
        self.scans.fetch_add(1, AtomicOrdering::Relaxed);
        let work = self.shard_work(sel);
        let parts: StoreResult<Vec<(FrequencyTable, Vec<String>)>> =
            par_map(&work, |(shard, local)| shard.frequencies(column, local))
                .into_iter()
                .collect();
        let parts = parts?;
        // Column slices share the parent dictionary, so codes agree across
        // shards and per-code counts sum directly.
        let dict = parts.first().map(|(_, d)| d.clone()).unwrap_or_default();
        let mut counts = vec![0usize; dict.len()];
        for (ft, _) in &parts {
            for &(code, n) in ft.entries() {
                counts[code as usize] += n;
            }
        }
        Ok((FrequencyTable::from_counts(counts), dict))
    }

    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize> {
        if self.column_type(column)?.is_numeric() {
            let runs = self.gather_runs(column, sel, false)?;
            let mut buf: Vec<f64> = runs.into_iter().flatten().collect();
            buf.sort_by(f64::total_cmp);
            buf.dedup();
            Ok(buf.len())
        } else {
            let (ft, _) = self.frequencies(column, sel)?;
            Ok(ft.cardinality())
        }
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            scans: self.scans.load(AtomicOrdering::Relaxed),
            counts: self.counts.load(AtomicOrdering::Relaxed),
            medians: self.medians.load(AtomicOrdering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.scans.store(0, AtomicOrdering::Relaxed);
        self.counts.store(0, AtomicOrdering::Relaxed);
        self.medians.store(0, AtomicOrdering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::datatype::DataType;

    /// 101 rows (odd, deliberately not 64-aligned) with nulls sprinkled
    /// through both columns.
    fn fixture() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for i in 0..101i64 {
            let x = if i % 11 == 3 {
                None
            } else {
                Some(Value::Int((i * 37) % 50))
            };
            let k = if i % 13 == 7 {
                None
            } else {
                Some(Value::str(["a", "b", "c"][(i % 3) as usize]))
            };
            b.push_row_opt(vec![x, k]).unwrap();
        }
        b.finish()
    }

    fn pred() -> StorePredicate {
        StorePredicate::and(vec![
            StorePredicate::range("x", Value::Int(5), Value::Int(40), true),
            StorePredicate::set("k", vec![Value::str("a"), Value::str("c")]),
        ])
    }

    #[test]
    fn shard_bounds_cover_all_rows_contiguously() {
        let t = fixture();
        for n in [1, 2, 3, 7, 64, 101, 500] {
            let s = ShardedTable::from_table(&t, n);
            assert_eq!(s.row_count(), t.len());
            assert!(s.shard_count() <= 101);
            let mut next = 0;
            for k in 0..s.shard_count() {
                let (start, end) = s.shard_bounds(k);
                assert_eq!(start, next, "gap before shard {k} (n={n})");
                assert!(end >= start);
                next = end;
            }
            assert_eq!(next, t.len(), "shards must cover every row (n={n})");
        }
    }

    #[test]
    fn shard_count_clamps() {
        let t = fixture();
        assert_eq!(ShardedTable::from_table(&t, 0).shard_count(), 1);
        assert_eq!(ShardedTable::from_table(&t, 500).shard_count(), 101);
        // Empty table keeps one empty shard and answers everything.
        let mut b = TableBuilder::new("empty");
        b.add_column("x", DataType::Int);
        let empty = ShardedTable::from_table(&b.finish(), 4);
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.count(&StorePredicate::True).unwrap(), 0);
        assert_eq!(empty.median("x", &Bitmap::new(0)).unwrap(), None);
    }

    #[test]
    fn agrees_with_table_on_every_operation() {
        let t = fixture();
        let all = t.all_rows();
        let p = pred();
        for n in [1, 2, 3, 7] {
            let s = ShardedTable::from_table(&t, n);
            assert_eq!(s.eval(&p).unwrap(), t.eval(&p).unwrap(), "eval n={n}");
            assert_eq!(s.count(&p).unwrap(), t.count(&p).unwrap(), "count n={n}");
            assert_eq!(s.not_null("x").unwrap(), t.not_null("x").unwrap());
            let sel = t.eval(&p).unwrap();
            assert_eq!(
                s.median("x", &sel).unwrap(),
                t.median("x", &sel).unwrap(),
                "median n={n}"
            );
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert_eq!(
                    s.quantile("x", &sel, q).unwrap(),
                    t.quantile("x", &sel, q).unwrap(),
                    "q={q} n={n}"
                );
            }
            assert_eq!(s.min_max("x", &sel).unwrap(), t.min_max("x", &sel).unwrap());
            assert_eq!(
                s.next_above("x", &sel, &Value::Int(10)).unwrap(),
                t.next_above("x", &sel, &Value::Int(10)).unwrap()
            );
            let (sm, sv) = s.mean_and_var("x", &sel).unwrap().unwrap();
            let (tm, tv) = t.mean_and_var("x", &sel).unwrap().unwrap();
            assert_eq!(sm.to_bits(), tm.to_bits(), "mean bits n={n}");
            assert_eq!(sv.to_bits(), tv.to_bits(), "var bits n={n}");
            let (sf, sd) = s.frequencies("k", &all).unwrap();
            let (tf, td) = t.frequencies("k", &all).unwrap();
            assert_eq!(sd, td);
            assert_eq!(sf.entries(), tf.entries());
            assert_eq!(
                s.distinct_count("x", &all).unwrap(),
                t.distinct_count("x", &all).unwrap()
            );
            assert_eq!(
                s.distinct_count("k", &all).unwrap(),
                t.distinct_count("k", &all).unwrap()
            );
        }
    }

    #[test]
    fn median_empty_and_type_errors_match_table() {
        let t = fixture();
        let s = ShardedTable::from_table(&t, 3);
        let none = Bitmap::new(t.len());
        assert_eq!(s.median("x", &none).unwrap(), None);
        assert!(s.median("k", &t.all_rows()).is_err());
        assert!(s.median("nope", &t.all_rows()).is_err());
        assert!(s.frequencies("x", &t.all_rows()).is_err());
        assert!(s
            .eval(&StorePredicate::range(
                "nope",
                Value::Int(0),
                Value::Int(1),
                true
            ))
            .is_err());
    }

    #[test]
    fn sampled_median_is_deterministic_per_shard_count() {
        let t = fixture();
        let sel = t.all_rows();
        for n in [1, 3, 7] {
            let s = ShardedTable::from_table(&t, n);
            let a = s.sampled_median("x", &sel, 31, 42).unwrap();
            let b = s.sampled_median("x", &sel, 31, 42).unwrap();
            assert_eq!(a, b, "same seed, same shards → same draw (n={n})");
            assert!(a.is_some());
            let c = s.sampled_median("x", &sel, 31, 43).unwrap();
            // Different seeds *may* coincide, but the draw machinery must
            // at least produce a value.
            assert!(c.is_some());
        }
        // Sample ≥ population degenerates to the exact median, shards or not.
        let s = ShardedTable::from_table(&t, 5);
        assert_eq!(
            s.sampled_median("x", &sel, 10_000, 1).unwrap(),
            t.median("x", &sel).unwrap()
        );
        assert_eq!(s.sampled_median("x", &sel, 0, 1).unwrap(), None);
    }

    #[test]
    fn scan_accounting_matches_table_even_with_short_circuit() {
        // An And whose first leaf selects nothing: Table::eval early-exits
        // and never scans the second leaf. The sharded backend combines
        // conjunctions at the merged level, so its tally must agree.
        let t = fixture();
        let s = ShardedTable::from_table(&t, 7);
        let short_circuit = StorePredicate::and(vec![
            StorePredicate::range("x", Value::Int(100_000), Value::Int(200_000), true),
            StorePredicate::set("k", vec![Value::str("a")]),
        ]);
        for p in [short_circuit, pred(), StorePredicate::True] {
            t.reset_stats();
            s.reset_stats();
            assert_eq!(s.eval(&p).unwrap(), t.eval(&p).unwrap());
            assert_eq!(
                s.stats().scans,
                t.stats().scans,
                "scan tally diverged on {p:?}"
            );
        }
    }

    #[test]
    fn counters_tally_once_not_per_shard() {
        let t = fixture();
        let s = ShardedTable::from_table(&t, 7);
        s.reset_stats();
        let p = pred(); // two leaf predicates
        let _ = s.eval(&p).unwrap();
        let _ = s.count(&p).unwrap();
        let _ = s.median("x", &t.all_rows()).unwrap();
        let _ = s.frequencies("k", &t.all_rows()).unwrap();
        let got = s.stats();
        assert_eq!(
            got,
            BackendStats {
                scans: 5, // 2 (eval leaves) + 2 (count leaves) + 1 (frequencies)
                counts: 1,
                medians: 1,
            },
            "counters must aggregate across shards exactly once"
        );
    }
}
