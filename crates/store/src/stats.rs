//! Order statistics and frequency tables.
//!
//! The paper identifies "median calculations and counts over predicates"
//! as the two database operations Charles performs (§5.1), and notes that
//! medians are "a major bottleneck" for which sampling is the proposed
//! remedy (§5.2). This module provides:
//!
//! * [`exact_median`] / [`quantile_value`] — linear-time selection
//!   (quickselect with random pivots) over a scratch buffer;
//! * [`FrequencyTable`] — per-value counts for nominal columns, with the
//!   paper's two orderings (by descending frequency for low-cardinality
//!   columns, alphabetical otherwise) and the accumulated-frequency split
//!   search used by nominal CUTs.

use crate::error::{StoreError, StoreResult};
use rand::Rng;

/// Exact median of a slice (destructive: reorders the buffer).
///
/// For even counts this returns the lower-median/upper-median midpoint,
/// i.e. the conventional arithmetic median the paper calls for.
pub fn exact_median(values: &mut [f64]) -> StoreResult<f64> {
    if values.is_empty() {
        return Err(StoreError::Empty("median of empty set".into()));
    }
    let n = values.len();
    if n % 2 == 1 {
        Ok(select_kth(values, n / 2))
    } else {
        let hi = select_kth(values, n / 2);
        // After select_kth, elements left of n/2 are all ≤ hi; the lower
        // median is the max of that prefix.
        let lo = values[..n / 2]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok((lo + hi) / 2.0)
    }
}

/// The value at quantile `q ∈ [0,1]` (nearest-rank; destructive).
pub fn quantile_value(values: &mut [f64], q: f64) -> StoreResult<f64> {
    if values.is_empty() {
        return Err(StoreError::Empty("quantile of empty set".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StoreError::Parse(format!("quantile {q} outside [0,1]")));
    }
    let n = values.len();
    let k = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    Ok(select_kth(values, k))
}

/// Quickselect: value of rank `k` (0-based) in ascending order.
/// Average O(n); random pivots defeat adversarial inputs.
pub fn select_kth(values: &mut [f64], k: usize) -> f64 {
    assert!(k < values.len(), "rank {k} out of range {}", values.len());
    let mut rng = rand::thread_rng();
    let (mut lo, mut hi) = (0usize, values.len());
    let mut k = k;
    loop {
        if hi - lo <= 16 {
            // Small ranges: insertion sort and index directly.
            values[lo..hi].sort_by(f64::total_cmp);
            return values[lo + k];
        }
        let pivot = values[rng.gen_range(lo..hi)];
        // Three-way partition around the pivot: [< pivot | == pivot | > pivot].
        let (mut lt, mut i, mut gt) = (lo, lo, hi);
        while i < gt {
            match values[i].total_cmp(&pivot) {
                std::cmp::Ordering::Less => {
                    values.swap(lt, i);
                    lt += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    gt -= 1;
                    values.swap(i, gt);
                }
                std::cmp::Ordering::Equal => i += 1,
            }
        }
        let less = lt - lo;
        let equal = gt - lt;
        if k < less {
            hi = lt;
        } else if k < less + equal {
            return pivot;
        } else {
            k -= less + equal;
            lo = gt;
        }
    }
}

/// Per-value frequency counts for a nominal column restricted to a
/// selection. Entries hold `(dictionary code, count)`.
#[derive(Debug, Clone)]
pub struct FrequencyTable {
    entries: Vec<(u32, usize)>,
    total: usize,
}

impl FrequencyTable {
    /// Build from raw per-code counts (index = dictionary code).
    pub fn from_counts(counts: Vec<usize>) -> FrequencyTable {
        let total = counts.iter().sum();
        let entries = counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(code, c)| (code as u32, c))
            .collect();
        FrequencyTable { entries, total }
    }

    /// Number of distinct values present.
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// Total number of counted rows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Entries `(code, count)` in unspecified order.
    pub fn entries(&self) -> &[(u32, usize)] {
        &self.entries
    }

    /// Entries sorted by descending frequency (count ties broken by code so
    /// the order is deterministic). The paper's ordering for
    /// low-cardinality nominal columns.
    pub fn by_frequency(&self) -> Vec<(u32, usize)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Entries sorted alphabetically by their dictionary string. The
    /// paper's ordering for high-cardinality nominal columns.
    pub fn alphabetical(&self, dict: &[String]) -> Vec<(u32, usize)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| dict[a.0 as usize].cmp(&dict[b.0 as usize]));
        v
    }

    /// Given an ordering of the entries, find the split position whose
    /// accumulated frequency is closest to 50% ("we set medk at the value
    /// for which the accumulated frequency is the closest to 50%").
    ///
    /// Returns `(split_index, prefix_count)` where the "left" piece is
    /// `ordered[..split_index]` — guaranteed non-empty on both sides when
    /// `ordered.len() ≥ 2`; returns `None` otherwise.
    pub fn half_split(ordered: &[(u32, usize)]) -> Option<(usize, usize)> {
        if ordered.len() < 2 {
            return None;
        }
        let total: usize = ordered.iter().map(|e| e.1).sum();
        let half = total as f64 / 2.0;
        let mut best: Option<(usize, usize)> = None;
        let mut acc = 0usize;
        // Split positions 1..len keep both sides non-empty.
        for (i, e) in ordered.iter().enumerate().take(ordered.len() - 1) {
            acc += e.1;
            let dist = (acc as f64 - half).abs();
            match best {
                Some((_, best_acc)) if (best_acc as f64 - half).abs() <= dist => {}
                _ => best = Some((i + 1, acc)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(exact_median(&mut v).unwrap(), 3.0);
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(exact_median(&mut v).unwrap(), 2.5);
    }

    #[test]
    fn median_empty_errors() {
        assert!(exact_median(&mut []).is_err());
    }

    #[test]
    fn median_with_duplicates() {
        let mut v = vec![7.0; 100];
        assert_eq!(exact_median(&mut v).unwrap(), 7.0);
        let mut v = vec![1.0, 1.0, 1.0, 9.0];
        assert_eq!(exact_median(&mut v).unwrap(), 1.0);
    }

    #[test]
    fn select_kth_matches_sort() {
        let base: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let mut sorted = base.clone();
        sorted.sort_by(f64::total_cmp);
        for k in [0, 1, 250, 499] {
            let mut work = base.clone();
            assert_eq!(select_kth(&mut work, k), sorted[k], "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_kth_out_of_range_panics() {
        select_kth(&mut [1.0], 1);
    }

    #[test]
    fn quantiles() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_value(&mut v.clone(), 0.5).unwrap(), 50.0);
        assert_eq!(quantile_value(&mut v.clone(), 0.25).unwrap(), 25.0);
        assert_eq!(quantile_value(&mut v.clone(), 1.0).unwrap(), 100.0);
        assert_eq!(quantile_value(&mut v, 0.0).unwrap(), 1.0);
        assert!(quantile_value(&mut [1.0], 1.5).is_err());
    }

    #[test]
    fn frequency_table_orders() {
        // code 0 appears 1x, code 1 appears 3x, code 2 appears 2x.
        let ft = FrequencyTable::from_counts(vec![1, 3, 2]);
        assert_eq!(ft.cardinality(), 3);
        assert_eq!(ft.total(), 6);
        assert_eq!(ft.by_frequency(), vec![(1, 3), (2, 2), (0, 1)]);
        let dict = vec!["zeeland".into(), "bantam".into(), "surat".into()];
        assert_eq!(ft.alphabetical(&dict), vec![(1, 3), (2, 2), (0, 1)]);
    }

    #[test]
    fn frequency_table_skips_absent_codes() {
        let ft = FrequencyTable::from_counts(vec![0, 2, 0, 1]);
        assert_eq!(ft.cardinality(), 2);
        assert_eq!(ft.entries().len(), 2);
    }

    #[test]
    fn half_split_balances() {
        // counts 3,2,1: prefix sums 3 (dist 0), 5 (dist 2) → split after 1st.
        let ordered = vec![(0u32, 3usize), (1, 2), (2, 1)];
        assert_eq!(FrequencyTable::half_split(&ordered), Some((1, 3)));
    }

    #[test]
    fn half_split_prefers_closest_to_half() {
        // counts 1,1,8: prefix 1 (dist 4), 2 (dist 3) → split after 2nd.
        let ordered = vec![(0u32, 1usize), (1, 1), (2, 8)];
        assert_eq!(FrequencyTable::half_split(&ordered), Some((2, 2)));
    }

    #[test]
    fn half_split_needs_two_values() {
        assert_eq!(FrequencyTable::half_split(&[(0, 10)]), None);
        assert_eq!(FrequencyTable::half_split(&[]), None);
    }
}
