//! Order statistics and frequency tables.
//!
//! The paper identifies "median calculations and counts over predicates"
//! as the two database operations Charles performs (§5.1), and notes that
//! medians are "a major bottleneck" for which sampling is the proposed
//! remedy (§5.2). This module provides:
//!
//! * [`exact_median`] / [`quantile_value`] — linear-time selection
//!   (quickselect with random pivots) over a scratch buffer;
//! * [`FrequencyTable`] — per-value counts for nominal columns, with the
//!   paper's two orderings (by descending frequency for low-cardinality
//!   columns, alphabetical otherwise) and the accumulated-frequency split
//!   search used by nominal CUTs.

use crate::error::{StoreError, StoreResult};
use rand::Rng;

/// Exact median of a slice (destructive: reorders the buffer).
///
/// For even counts this returns the lower-median/upper-median midpoint,
/// i.e. the conventional arithmetic median the paper calls for.
pub fn exact_median(values: &mut [f64]) -> StoreResult<f64> {
    if values.is_empty() {
        return Err(StoreError::Empty("median of empty set".into()));
    }
    let n = values.len();
    if n % 2 == 1 {
        Ok(select_kth(values, n / 2))
    } else {
        let hi = select_kth(values, n / 2);
        // After select_kth, elements left of n/2 are all ≤ hi; the lower
        // median is the max of that prefix.
        let lo = values[..n / 2]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok((lo + hi) / 2.0)
    }
}

/// The value at quantile `q ∈ [0,1]` (nearest-rank; destructive).
pub fn quantile_value(values: &mut [f64], q: f64) -> StoreResult<f64> {
    if values.is_empty() {
        return Err(StoreError::Empty("quantile of empty set".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StoreError::Parse(format!("quantile {q} outside [0,1]")));
    }
    let n = values.len();
    let k = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    Ok(select_kth(values, k))
}

/// Quickselect: value of rank `k` (0-based) in ascending order.
/// Average O(n); random pivots defeat adversarial inputs.
pub fn select_kth(values: &mut [f64], k: usize) -> f64 {
    assert!(k < values.len(), "rank {k} out of range {}", values.len());
    let mut rng = rand::thread_rng();
    let (mut lo, mut hi) = (0usize, values.len());
    let mut k = k;
    loop {
        if hi - lo <= 16 {
            // Small ranges: insertion sort and index directly.
            values[lo..hi].sort_by(f64::total_cmp);
            return values[lo + k];
        }
        let pivot = values[rng.gen_range(lo..hi)];
        // Three-way partition around the pivot: [< pivot | == pivot | > pivot].
        let (mut lt, mut i, mut gt) = (lo, lo, hi);
        while i < gt {
            match values[i].total_cmp(&pivot) {
                std::cmp::Ordering::Less => {
                    values.swap(lt, i);
                    lt += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    gt -= 1;
                    values.swap(i, gt);
                }
                std::cmp::Ordering::Equal => i += 1,
            }
        }
        let less = lt - lo;
        let equal = gt - lt;
        if k < less {
            hi = lt;
        } else if k < less + equal {
            return pivot;
        } else {
            k -= less + equal;
            lo = gt;
        }
    }
}

/// Mean and population variance of a slice, in index order. `None` for an
/// empty slice. Shared by every backend so that a sharded gather (buffers
/// concatenated in shard = row order) folds in exactly the same order as a
/// single-table gather — which is what makes the results bitwise identical.
pub fn mean_and_var_of(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Some((mean, var))
}

/// The order-preserving integer key behind `f64::total_cmp`: `a.total_cmp(&b)`
/// equals `ordered_key(a).cmp(&ordered_key(b))`. Round-trips exactly via
/// [`key_to_f64`], which is what lets a rank search over keys return the
/// element's original bits.
fn ordered_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`ordered_key`].
fn key_to_f64(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// K-way order-statistic selection over individually **sorted** runs
/// (ascending by `total_cmp`): the values at the requested global ranks,
/// without materialising the merged sequence.
///
/// This is the cross-shard median/quantile merge: each shard gathers and
/// sorts its own values in parallel, then each rank resolves with a
/// binary search over the total-order key space, counting elements via
/// per-run `partition_point` — `O(runs · log(run len))` per probe, 64
/// probes, independent of the rank itself (a head-pointer merge walk
/// would cost `O(rank · runs)` and dominate medians of large selections).
/// `ranks` must be strictly increasing and in range of the total length.
/// Returns one value per requested rank.
///
/// Because the multiset of values is exactly the concatenation of the
/// runs, the value at rank `k` here is bit-for-bit the value
/// [`select_kth`] finds at rank `k` on the concatenated buffer.
pub fn select_ranks_sorted_runs(runs: &[Vec<f64>], ranks: &[usize]) -> Vec<f64> {
    let total: usize = runs.iter().map(Vec::len).sum();
    assert!(
        ranks.windows(2).all(|w| w[0] < w[1]),
        "ranks must be strictly increasing"
    );
    if let Some(&last) = ranks.last() {
        assert!(last < total, "rank {last} out of range {total}");
    }
    ranks
        .iter()
        .map(|&k| {
            // Smallest key whose ≤-count reaches k+1. The count function
            // steps only at keys of present elements, so the search lands
            // exactly on the rank-k element's key.
            let (mut lo, mut hi) = (0u64, u64::MAX);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let le: usize = runs
                    .iter()
                    .map(|r| r.partition_point(|&v| ordered_key(v) <= mid))
                    .sum();
                if le > k {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            key_to_f64(lo)
        })
        .collect()
}

/// Exact median across sorted runs — the same statistic as
/// [`exact_median`] over the concatenated values (lower/upper midpoint
/// for even counts), computed by k-way selection.
pub fn median_of_sorted_runs(runs: &[Vec<f64>]) -> StoreResult<f64> {
    let n: usize = runs.iter().map(Vec::len).sum();
    if n == 0 {
        return Err(StoreError::Empty("median of empty set".into()));
    }
    if n % 2 == 1 {
        Ok(select_ranks_sorted_runs(runs, &[n / 2])[0])
    } else {
        let picked = select_ranks_sorted_runs(runs, &[n / 2 - 1, n / 2]);
        Ok((picked[0] + picked[1]) / 2.0)
    }
}

/// Nearest-rank quantile across sorted runs — the same statistic as
/// [`quantile_value`] over the concatenated values.
pub fn quantile_of_sorted_runs(runs: &[Vec<f64>], q: f64) -> StoreResult<f64> {
    let n: usize = runs.iter().map(Vec::len).sum();
    if n == 0 {
        return Err(StoreError::Empty("quantile of empty set".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StoreError::Parse(format!("quantile {q} outside [0,1]")));
    }
    let k = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    Ok(select_ranks_sorted_runs(runs, &[k])[0])
}

/// Per-value frequency counts for a nominal column restricted to a
/// selection. Entries hold `(dictionary code, count)`.
#[derive(Debug, Clone)]
pub struct FrequencyTable {
    entries: Vec<(u32, usize)>,
    total: usize,
}

impl FrequencyTable {
    /// Build from raw per-code counts (index = dictionary code).
    pub fn from_counts(counts: Vec<usize>) -> FrequencyTable {
        let total = counts.iter().sum();
        let entries = counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(code, c)| (code as u32, c))
            .collect();
        FrequencyTable { entries, total }
    }

    /// Number of distinct values present.
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// Total number of counted rows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Entries `(code, count)` in unspecified order.
    pub fn entries(&self) -> &[(u32, usize)] {
        &self.entries
    }

    /// Entries sorted by descending frequency (count ties broken by code so
    /// the order is deterministic). The paper's ordering for
    /// low-cardinality nominal columns.
    pub fn by_frequency(&self) -> Vec<(u32, usize)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Entries sorted alphabetically by their dictionary string. The
    /// paper's ordering for high-cardinality nominal columns.
    pub fn alphabetical(&self, dict: &[String]) -> Vec<(u32, usize)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| dict[a.0 as usize].cmp(&dict[b.0 as usize]));
        v
    }

    /// Given an ordering of the entries, find the split position whose
    /// accumulated frequency is closest to 50% ("we set medk at the value
    /// for which the accumulated frequency is the closest to 50%").
    ///
    /// Returns `(split_index, prefix_count)` where the "left" piece is
    /// `ordered[..split_index]` — guaranteed non-empty on both sides when
    /// `ordered.len() ≥ 2`; returns `None` otherwise.
    pub fn half_split(ordered: &[(u32, usize)]) -> Option<(usize, usize)> {
        if ordered.len() < 2 {
            return None;
        }
        let total: usize = ordered.iter().map(|e| e.1).sum();
        let half = total as f64 / 2.0;
        let mut best: Option<(usize, usize)> = None;
        let mut acc = 0usize;
        // Split positions 1..len keep both sides non-empty.
        for (i, e) in ordered.iter().enumerate().take(ordered.len() - 1) {
            acc += e.1;
            let dist = (acc as f64 - half).abs();
            match best {
                Some((_, best_acc)) if (best_acc as f64 - half).abs() <= dist => {}
                _ => best = Some((i + 1, acc)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(exact_median(&mut v).unwrap(), 3.0);
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(exact_median(&mut v).unwrap(), 2.5);
    }

    #[test]
    fn median_empty_errors() {
        assert!(exact_median(&mut []).is_err());
    }

    #[test]
    fn median_with_duplicates() {
        let mut v = vec![7.0; 100];
        assert_eq!(exact_median(&mut v).unwrap(), 7.0);
        let mut v = vec![1.0, 1.0, 1.0, 9.0];
        assert_eq!(exact_median(&mut v).unwrap(), 1.0);
    }

    #[test]
    fn select_kth_matches_sort() {
        let base: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let mut sorted = base.clone();
        sorted.sort_by(f64::total_cmp);
        for k in [0, 1, 250, 499] {
            let mut work = base.clone();
            assert_eq!(select_kth(&mut work, k), sorted[k], "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_kth_out_of_range_panics() {
        select_kth(&mut [1.0], 1);
    }

    #[test]
    fn quantiles() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_value(&mut v.clone(), 0.5).unwrap(), 50.0);
        assert_eq!(quantile_value(&mut v.clone(), 0.25).unwrap(), 25.0);
        assert_eq!(quantile_value(&mut v.clone(), 1.0).unwrap(), 100.0);
        assert_eq!(quantile_value(&mut v, 0.0).unwrap(), 1.0);
        assert!(quantile_value(&mut [1.0], 1.5).is_err());
    }

    #[test]
    fn sorted_run_selection_matches_single_buffer() {
        // Deterministically scatter values over 4 runs of uneven length.
        let all: Vec<f64> = (0..257).map(|i| ((i * 37) % 101) as f64).collect();
        let mut runs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (i, &v) in all.iter().enumerate() {
            runs[(i * i) % 4].push(v);
        }
        for run in &mut runs {
            run.sort_by(f64::total_cmp);
        }
        let mut merged = all.clone();
        merged.sort_by(f64::total_cmp);
        for ks in [vec![0usize], vec![128], vec![256], vec![0, 100, 255]] {
            let got = select_ranks_sorted_runs(&runs, &ks);
            let want: Vec<f64> = ks.iter().map(|&k| merged[k]).collect();
            assert_eq!(got, want, "ranks {ks:?}");
        }
        // Median and quantiles match the single-buffer versions bitwise.
        assert_eq!(
            median_of_sorted_runs(&runs).unwrap().to_bits(),
            exact_median(&mut all.clone()).unwrap().to_bits()
        );
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                quantile_of_sorted_runs(&runs, q).unwrap().to_bits(),
                quantile_value(&mut all.clone(), q).unwrap().to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn sorted_run_selection_handles_negatives_and_signed_zero() {
        // The rank search runs over total_cmp's integer key space; the
        // sign flip and -0.0 < +0.0 ordering must survive the round trip.
        let mut all = vec![-5.5, -0.0, 0.0, 3.25, -2.0, 7.0, -0.0, 1.0];
        let mut runs = vec![
            vec![-5.5, -0.0, 3.25],
            vec![-2.0, 0.0, 7.0],
            vec![-0.0, 1.0],
        ];
        for run in &mut runs {
            run.sort_by(f64::total_cmp);
        }
        let mut sorted = all.clone();
        sorted.sort_by(f64::total_cmp);
        for (k, want) in sorted.iter().enumerate() {
            assert_eq!(
                select_ranks_sorted_runs(&runs, &[k])[0].to_bits(),
                want.to_bits(),
                "rank {k}"
            );
        }
        assert_eq!(
            median_of_sorted_runs(&runs).unwrap().to_bits(),
            exact_median(&mut all).unwrap().to_bits()
        );
    }

    #[test]
    fn sorted_run_selection_even_count_midpoint() {
        // Even total spread over runs, including an empty run.
        let runs = vec![vec![1.0, 4.0], vec![], vec![2.0, 3.0]];
        assert_eq!(median_of_sorted_runs(&runs).unwrap(), 2.5);
    }

    #[test]
    fn sorted_run_selection_empty_and_domain_errors() {
        assert!(median_of_sorted_runs(&[]).is_err());
        assert!(median_of_sorted_runs(&[vec![], vec![]]).is_err());
        assert!(quantile_of_sorted_runs(&[vec![1.0]], 1.5).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sorted_run_selection_rank_out_of_range_panics() {
        select_ranks_sorted_runs(&[vec![1.0]], &[1]);
    }

    #[test]
    fn mean_and_var_of_basics() {
        assert_eq!(mean_and_var_of(&[]), None);
        let (m, v) = mean_and_var_of(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(m, 4.0);
        assert!((v - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_table_orders() {
        // code 0 appears 1x, code 1 appears 3x, code 2 appears 2x.
        let ft = FrequencyTable::from_counts(vec![1, 3, 2]);
        assert_eq!(ft.cardinality(), 3);
        assert_eq!(ft.total(), 6);
        assert_eq!(ft.by_frequency(), vec![(1, 3), (2, 2), (0, 1)]);
        let dict = vec!["zeeland".into(), "bantam".into(), "surat".into()];
        assert_eq!(ft.alphabetical(&dict), vec![(1, 3), (2, 2), (0, 1)]);
    }

    #[test]
    fn frequency_table_skips_absent_codes() {
        let ft = FrequencyTable::from_counts(vec![0, 2, 0, 1]);
        assert_eq!(ft.cardinality(), 2);
        assert_eq!(ft.entries().len(), 2);
    }

    #[test]
    fn half_split_balances() {
        // counts 3,2,1: prefix sums 3 (dist 0), 5 (dist 2) → split after 1st.
        let ordered = vec![(0u32, 3usize), (1, 2), (2, 1)];
        assert_eq!(FrequencyTable::half_split(&ordered), Some((1, 3)));
    }

    #[test]
    fn half_split_prefers_closest_to_half() {
        // counts 1,1,8: prefix 1 (dist 4), 2 (dist 3) → split after 2nd.
        let ordered = vec![(0u32, 1usize), (1, 1), (2, 8)];
        assert_eq!(FrequencyTable::half_split(&ordered), Some((2, 2)));
    }

    #[test]
    fn half_split_needs_two_values() {
        assert_eq!(FrequencyTable::half_split(&[(0, 10)]), None);
        assert_eq!(FrequencyTable::half_split(&[]), None);
    }
}
