//! The columnar relation: schema + columns + the `Backend` operations.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// An immutable, in-memory columnar table.
///
/// Built via [`crate::TableBuilder`]; once finished it only serves reads,
/// which keeps the advisor loop free of interior mutability concerns.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Operation counters for the experiments (scans / counts / medians).
    scans: AtomicU64,
    counts: AtomicU64,
    medians: AtomicU64,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            scans: AtomicU64::new(self.scans.load(AtomicOrdering::Relaxed)),
            counts: AtomicU64::new(self.counts.load(AtomicOrdering::Relaxed)),
            medians: AtomicU64::new(self.medians.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl Table {
    pub(crate) fn from_parts(name: String, schema: Schema, columns: Vec<Column>) -> Table {
        let rows = columns.first().map_or(0, Column::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Table {
            name,
            schema,
            columns,
            rows,
            scans: AtomicU64::new(0),
            counts: AtomicU64::new(0),
            medians: AtomicU64::new(0),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column accessor by name.
    pub fn column(&self, name: &str) -> StoreResult<&Column> {
        self.schema
            .index_of(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Cell value at (`row`, `column`); `None` for nulls.
    pub fn value(&self, row: usize, column: &str) -> StoreResult<Option<Value>> {
        Ok(self.column(column)?.get(row))
    }

    /// Selection of all rows.
    pub fn all_rows(&self) -> Bitmap {
        Bitmap::ones(self.rows)
    }
}

// The `Backend` implementation is expanded from the shared
// `impl_dense_backend` macro, verbatim the same code as `DiskTable`'s —
// the bitwise-equivalence guarantee between the in-memory and on-disk
// backends is structural, not hand-synchronized.
crate::backend::impl_dense_backend!(Table);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendStats};
    use crate::builder::TableBuilder;
    use crate::datatype::DataType;
    use crate::predicate::StorePredicate;

    fn boats() -> Table {
        let mut b = TableBuilder::new("boats");
        b.add_column("tonnage", DataType::Int);
        b.add_column("kind", DataType::Str);
        b.add_column("built", DataType::Date);
        let rows: Vec<(i64, &str, &str)> = vec![
            (1000, "fluit", "1700"),
            (1100, "fluit", "1710"),
            (1200, "fluit", "1720"),
            (2500, "jacht", "1730"),
            (2600, "jacht", "1740"),
            (900, "pinas", "1750"),
        ];
        for (t, k, y) in rows {
            b.push_row(vec![
                Value::Int(t),
                Value::str(k),
                Value::parse_typed(y, DataType::Date).unwrap(),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn eval_true_selects_everything() {
        let t = boats();
        assert_eq!(t.eval(&StorePredicate::True).unwrap().count_ones(), 6);
    }

    #[test]
    fn eval_conjunction() {
        let t = boats();
        let p = StorePredicate::and(vec![
            StorePredicate::range("tonnage", Value::Int(1000), Value::Int(3000), true),
            StorePredicate::set("kind", vec![Value::str("fluit")]),
        ]);
        assert_eq!(t.count(&p).unwrap(), 3);
    }

    #[test]
    fn eval_unknown_column_errors() {
        let t = boats();
        let p = StorePredicate::range("nope", Value::Int(0), Value::Int(1), true);
        assert!(matches!(t.eval(&p), Err(StoreError::UnknownColumn(_))));
    }

    #[test]
    fn median_over_selection() {
        let t = boats();
        let sel = t
            .eval(&StorePredicate::set("kind", vec![Value::str("fluit")]))
            .unwrap();
        assert_eq!(t.median("tonnage", &sel).unwrap(), Some(Value::Int(1100)));
    }

    #[test]
    fn median_even_count_is_midpoint() {
        let t = boats();
        let sel = t
            .eval(&StorePredicate::set(
                "kind",
                vec![Value::str("jacht"), Value::str("pinas")],
            ))
            .unwrap();
        // values 2500, 2600, 900 → median 2500; then only jacht: 2500,2600 →
        // midpoint 2550, folded back into the Int value space because it is
        // integral.
        let jacht = t
            .eval(&StorePredicate::set("kind", vec![Value::str("jacht")]))
            .unwrap();
        assert_eq!(t.median("tonnage", &sel).unwrap(), Some(Value::Int(2500)));
        assert_eq!(t.median("tonnage", &jacht).unwrap(), Some(Value::Int(2550)));
    }

    #[test]
    fn median_non_integral_midpoint_stays_float() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for v in [1, 2] {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let t = b.finish();
        assert_eq!(
            t.median("x", &t.all_rows()).unwrap(),
            Some(Value::Float(1.5))
        );
    }

    #[test]
    fn median_empty_selection_is_none() {
        let t = boats();
        let empty = Bitmap::new(t.len());
        assert_eq!(t.median("tonnage", &empty).unwrap(), None);
    }

    #[test]
    fn median_on_nominal_errors() {
        let t = boats();
        assert!(t.median("kind", &t.all_rows()).is_err());
    }

    #[test]
    fn median_on_dates() {
        let t = boats();
        let m = t.median("built", &t.all_rows()).unwrap().unwrap();
        // Six evenly spaced years 1700..1750 → midpoint of 1720/1730, which
        // is a whole day count, so it stays in the Date value space and
        // orders between the two middle years.
        assert_eq!(m.data_type(), DataType::Date);
        let y1720 = Value::parse_typed("1720", DataType::Date).unwrap();
        let y1730 = Value::parse_typed("1730", DataType::Date).unwrap();
        assert!(m.try_cmp(&y1720).unwrap().is_gt());
        assert!(m.try_cmp(&y1730).unwrap().is_lt());
    }

    #[test]
    fn sampled_median_close_to_exact() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for i in 0..10_000i64 {
            b.push_row(vec![Value::Int(i)]).unwrap();
        }
        let t = b.finish();
        let sel = t.all_rows();
        let exact = t.median("x", &sel).unwrap().unwrap().as_f64().unwrap();
        let approx = t
            .sampled_median("x", &sel, 512, 7)
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        let rel = (exact - approx).abs() / exact;
        assert!(rel < 0.1, "sampled median off by {rel}");
    }

    #[test]
    fn quantiles_on_table() {
        let t = boats();
        let q25 = t.quantile("tonnage", &t.all_rows(), 0.25).unwrap().unwrap();
        assert_eq!(q25, Value::Int(1000));
    }

    #[test]
    fn frequencies_and_distinct() {
        let t = boats();
        let (ft, dict) = t.frequencies("kind", &t.all_rows()).unwrap();
        assert_eq!(ft.total(), 6);
        let by_freq = ft.by_frequency();
        assert_eq!(dict[by_freq[0].0 as usize], "fluit");
        assert_eq!(by_freq[0].1, 3);
        assert_eq!(t.distinct_count("kind", &t.all_rows()).unwrap(), 3);
        assert_eq!(t.distinct_count("tonnage", &t.all_rows()).unwrap(), 6);
    }

    #[test]
    fn frequencies_on_numeric_errors() {
        let t = boats();
        assert!(t.frequencies("tonnage", &t.all_rows()).is_err());
    }

    #[test]
    fn min_max_via_backend() {
        let t = boats();
        let (lo, hi) = t.min_max("tonnage", &t.all_rows()).unwrap().unwrap();
        assert_eq!(lo, Value::Int(900));
        assert_eq!(hi, Value::Int(2600));
    }

    #[test]
    fn mean_and_var_basics() {
        let t = boats();
        let all = t.all_rows();
        let (mean, var) = t.mean_and_var("tonnage", &all).unwrap().unwrap();
        let expected_mean = (1000 + 1100 + 1200 + 2500 + 2600 + 900) as f64 / 6.0;
        assert!((mean - expected_mean).abs() < 1e-9);
        assert!(var > 0.0);
        // Constant selection → zero variance.
        let one = t
            .eval(&StorePredicate::set("kind", vec![Value::str("pinas")]))
            .unwrap();
        let (m, v) = t.mean_and_var("tonnage", &one).unwrap().unwrap();
        assert_eq!(m, 900.0);
        assert_eq!(v, 0.0);
        // Empty selection → None; nominal column → error.
        assert_eq!(
            t.mean_and_var("tonnage", &Bitmap::new(t.len())).unwrap(),
            None
        );
        assert!(t.mean_and_var("kind", &all).is_err());
    }

    #[test]
    fn next_above_finds_successor() {
        let t = boats();
        let all = t.all_rows();
        assert_eq!(
            t.next_above("tonnage", &all, &Value::Int(1000)).unwrap(),
            Some(Value::Int(1100))
        );
        assert_eq!(
            t.next_above("tonnage", &all, &Value::Int(2600)).unwrap(),
            None
        );
        // Works for nominal columns too (lexicographic successor).
        assert_eq!(
            t.next_above("kind", &all, &Value::str("fluit")).unwrap(),
            Some(Value::str("jacht"))
        );
    }

    #[test]
    fn next_above_respects_selection() {
        let t = boats();
        let jacht = t
            .eval(&StorePredicate::set("kind", vec![Value::str("jacht")]))
            .unwrap();
        assert_eq!(
            t.next_above("tonnage", &jacht, &Value::Int(0)).unwrap(),
            Some(Value::Int(2500))
        );
    }

    #[test]
    fn stats_counters_track_operations() {
        let t = boats();
        t.reset_stats();
        let _ = t.count(&StorePredicate::set("kind", vec![Value::str("fluit")]));
        let _ = t.median("tonnage", &t.all_rows());
        let s = t.stats();
        // The count is tallied as a logical count AND as the physical scan
        // it performs — previously it was recorded as an eval only.
        assert_eq!(s.scans, 1);
        assert_eq!(s.counts, 1);
        assert_eq!(s.medians, 1);
        let _ = t.eval(&StorePredicate::set("kind", vec![Value::str("jacht")]));
        assert_eq!(t.stats().scans, 2);
        assert_eq!(t.stats().counts, 1, "plain eval must not tally a count");
        t.reset_stats();
        assert_eq!(t.stats(), BackendStats::default());
    }
}
