//! Dynamically typed values: the currency between the advisor and the store.
//!
//! A [`Value`] is a single cell. Values of the same [`DataType`] form a
//! total order (floats reject NaN at construction time, so `total_cmp`
//! equals the intuitive order); cross-type comparison between `Int`,
//! `Float` and `Date` is numeric, which lets medians of integer columns be
//! reported as non-integral split points.

use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use std::cmp::Ordering;
use std::fmt;

/// Number of days per "month" and "year" in the simplified proleptic
/// calendar used for date literal parsing. Charles never does calendar
/// arithmetic — dates only need a total order and a median — so a
/// fixed-length calendar keeps parsing dependency-free while preserving
/// ordering for well-formed `YYYY-MM-DD` literals.
const DAYS_PER_YEAR: i64 = 372; // 12 * 31
const DAYS_PER_MONTH: i64 = 31;

/// A single dynamically typed data value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Finite 64-bit float (NaN is rejected by [`Value::float`]).
    Float(f64),
    /// UTF-8 string (nominal).
    Str(String),
    /// Days since epoch in the simplified calendar.
    Date(i64),
    /// Boolean.
    Bool(bool),
}

/// Wrap a raw f64 statistic back into a numeric column's value space.
/// Medians of integer/date columns are reported as floats when they fall
/// between two values (e.g. Figure 1's `tonnage: 1100,1150` boundaries
/// come from integral medians). Every backend funnels its statistics
/// through this one function so they agree bitwise on the folding.
pub fn numeric_value(ty: DataType, v: f64) -> Value {
    match ty {
        DataType::Int | DataType::Date if v.fract() == 0.0 => match ty {
            DataType::Int => Value::Int(v as i64),
            _ => Value::Date(v as i64),
        },
        _ => Value::Float(v),
    }
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a float value, rejecting NaN (which would break ordering).
    pub fn float(v: f64) -> StoreResult<Value> {
        if v.is_nan() {
            Err(StoreError::Parse("NaN is not a valid Float value".into()))
        } else {
            Ok(Value::Float(v))
        }
    }

    /// Build a date value from a calendar triple (simplified calendar).
    pub fn date_ymd(year: i64, month: i64, day: i64) -> Value {
        Value::Date((year - 1970) * DAYS_PER_YEAR + (month - 1) * DAYS_PER_MONTH + (day - 1))
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Numeric view of the value, if it has one (`Int`, `Float`, `Date`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            Value::Str(_) | Value::Bool(_) => None,
        }
    }

    /// String view, if nominal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether two values belong to the same comparison family:
    /// numerics compare with numerics, otherwise types must match exactly.
    pub fn comparable_with(&self, other: &Value) -> bool {
        let (a, b) = (self.data_type(), other.data_type());
        a == b || (a.is_numeric() && b.is_numeric())
    }

    /// Total-order comparison. Returns an error for incomparable families
    /// (e.g. `Str` vs `Int`) instead of panicking so that malformed SDL
    /// predicates surface as proper errors.
    pub fn try_cmp(&self, other: &Value) -> StoreResult<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Ok(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(a.total_cmp(&b)),
                _ => Err(StoreError::TypeMismatch {
                    column: "<value comparison>".into(),
                    expected: self.data_type().name().into(),
                    found: other.data_type().name().into(),
                }),
            },
        }
    }

    /// Parse a textual literal into a value of the given type.
    pub fn parse_typed(text: &str, ty: DataType) -> StoreResult<Value> {
        let t = text.trim();
        match ty {
            DataType::Int => t
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| StoreError::Parse(format!("bad int literal {t:?}: {e}"))),
            DataType::Float => {
                let v = t
                    .parse::<f64>()
                    .map_err(|e| StoreError::Parse(format!("bad float literal {t:?}: {e}")))?;
                Value::float(v)
            }
            DataType::Str => Ok(Value::Str(t.to_string())),
            DataType::Bool => match t.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
                _ => Err(StoreError::Parse(format!("bad bool literal {t:?}"))),
            },
            DataType::Date => parse_date(t),
        }
    }

    /// Render a value the way the paper renders literals: bare numbers,
    /// bare identifiers, ISO-ish dates.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Date(d) => render_date(*d),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Parse `YYYY-MM-DD` (or a bare year, common in the paper's examples,
/// e.g. `date: [1550, 1650]`) into a [`Value::Date`].
fn parse_date(t: &str) -> StoreResult<Value> {
    if let Ok(year) = t.parse::<i64>() {
        return Ok(Value::date_ymd(year, 1, 1));
    }
    let parts: Vec<&str> = t.split('-').collect();
    if parts.len() == 3 {
        let nums: StoreResult<Vec<i64>> = parts
            .iter()
            .map(|p| {
                p.parse::<i64>()
                    .map_err(|e| StoreError::Parse(format!("bad date {t:?}: {e}")))
            })
            .collect();
        let nums = nums?;
        let (y, m, d) = (nums[0], nums[1], nums[2]);
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(StoreError::Parse(format!("date out of range: {t:?}")));
        }
        Ok(Value::date_ymd(y, m, d))
    } else {
        Err(StoreError::Parse(format!(
            "bad date literal {t:?} (expected YYYY-MM-DD or YYYY)"
        )))
    }
}

/// Render days-since-epoch back to `YYYY-MM-DD` in the simplified calendar.
fn render_date(days: i64) -> String {
    let year = 1970 + days.div_euclid(DAYS_PER_YEAR);
    let rem = days.rem_euclid(DAYS_PER_YEAR);
    let month = rem / DAYS_PER_MONTH + 1;
    let day = rem % DAYS_PER_MONTH + 1;
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_float_cross_comparison_is_numeric() {
        assert_eq!(
            Value::Int(2).try_cmp(&Value::Float(2.5)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(3.0).try_cmp(&Value::Int(3)).unwrap(),
            Ordering::Equal
        );
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::str("fluit").try_cmp(&Value::str("jacht")).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn incomparable_families_error() {
        assert!(Value::Int(1).try_cmp(&Value::str("a")).is_err());
        assert!(!Value::Int(1).comparable_with(&Value::str("a")));
        assert!(Value::Int(1).comparable_with(&Value::Date(0)));
    }

    #[test]
    fn nan_rejected() {
        assert!(Value::float(f64::NAN).is_err());
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn date_parsing_orders_correctly() {
        let a = Value::parse_typed("1550", DataType::Date).unwrap();
        let b = Value::parse_typed("1650-06-15", DataType::Date).unwrap();
        assert_eq!(a.try_cmp(&b).unwrap(), Ordering::Less);
    }

    #[test]
    fn date_render_round_trip() {
        let v = Value::parse_typed("1744-03-07", DataType::Date).unwrap();
        assert_eq!(v.render(), "1744-03-07");
        let reparsed = Value::parse_typed(&v.render(), DataType::Date).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn bare_year_renders_as_january_first() {
        let v = Value::parse_typed("1700", DataType::Date).unwrap();
        assert_eq!(v.render(), "1700-01-01");
    }

    #[test]
    fn parse_typed_handles_each_type() {
        assert_eq!(
            Value::parse_typed("42", DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_typed("2.5", DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::parse_typed("Bantam", DataType::Str).unwrap(),
            Value::str("Bantam")
        );
        assert_eq!(
            Value::parse_typed("yes", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::parse_typed("4x2", DataType::Int).is_err());
        assert!(Value::parse_typed("maybe", DataType::Bool).is_err());
    }

    #[test]
    fn render_float_distinguishes_integral() {
        assert_eq!(Value::Float(1150.0).render(), "1150.0");
        assert_eq!(Value::Float(1150.5).render(), "1150.5");
    }

    #[test]
    fn data_type_matches_variant() {
        assert_eq!(Value::Int(0).data_type(), DataType::Int);
        assert_eq!(Value::str("x").data_type(), DataType::Str);
        assert_eq!(Value::Bool(false).data_type(), DataType::Bool);
        assert_eq!(Value::Date(0).data_type(), DataType::Date);
    }

    #[test]
    fn as_f64_only_for_numerics() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Date(10).as_f64(), Some(10.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn malformed_dates_rejected() {
        assert!(Value::parse_typed("1700-13-01", DataType::Date).is_err());
        assert!(Value::parse_typed("1700-02", DataType::Date).is_err());
        assert!(Value::parse_typed("17a0-02-01", DataType::Date).is_err());
    }
}
