//! Differential battery for the compressed bitmap containers.
//!
//! The `Bitmap` has two representations — the flat dense word vector
//! and the Roaring-style per-64Ki-chunk containers (array / run /
//! bitmap) — behind one API, and the whole design rests on the claim
//! that the representation is *unobservable*. This suite attacks that
//! claim from outside the crate: every public operation is driven
//! against two oracles at once —
//!
//! 1. a `Vec<bool>` model (ground truth for each operation's meaning);
//! 2. the retained **dense** `Bitmap` (the pre-compression code path,
//!    bitwise authoritative via `words()`).
//!
//! A compressed twin replays the identical operation sequence and must
//! agree with both oracles after every step: same length, same
//! cardinality, same `words()` stream bit for bit (which also proves no
//! bit beyond `len` is ever set — the PR 2 tail invariant), same
//! iteration order, semantic equality and equal hashes in both
//! directions.
//!
//! Deterministic edge tests pin the container boundaries: exactly 4096
//! values in a chunk (the array/bitmap promotion threshold), all-set
//! runs, empty chunks, and chunk-straddling appends and slices.
//!
//! Regression seeds live in `proptest-regressions/bitmap_containers.txt`.

use charles_store::Bitmap;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// One Roaring chunk covers this many rows.
const CHUNK: usize = 65536;
/// An array container holds at most this many values before promotion.
const ARRAY_MAX: usize = 4096;

fn build(bits: &[bool], compressed: bool) -> Bitmap {
    let mut bm = Bitmap::new(bits.len());
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bm.set(i);
        }
    }
    // Pin the layout explicitly: the process default (feature- or
    // env-selected) must not leak into which lane is which.
    if compressed {
        bm.compress()
    } else {
        bm.to_dense()
    }
}

fn hash_of(bm: &Bitmap) -> u64 {
    let mut h = DefaultHasher::new();
    bm.hash(&mut h);
    h.finish()
}

/// Assert the dense and compressed twins both match the model exactly.
fn check(model: &[bool], dense: &Bitmap, comp: &Bitmap) -> Result<(), TestCaseError> {
    prop_assert_eq!(dense.len(), model.len());
    prop_assert_eq!(comp.len(), model.len());
    prop_assert!(!dense.is_compressed());
    prop_assert!(comp.is_compressed());

    let expected_ones = model.iter().filter(|&&b| b).count();
    prop_assert_eq!(dense.count_ones(), expected_ones, "dense count");
    prop_assert_eq!(comp.count_ones(), expected_ones, "compressed count");
    prop_assert_eq!(dense.none(), expected_ones == 0);
    prop_assert_eq!(comp.none(), expected_ones == 0);

    // Bitwise oracle: the dense word stream is authoritative. Building
    // the expected words from the model also proves the tail invariant
    // from outside the crate — a stray bit beyond `len` would differ.
    let mut expected_words = vec![0u64; model.len().div_ceil(64)];
    for (i, &b) in model.iter().enumerate() {
        if b {
            expected_words[i / 64] |= 1u64 << (i % 64);
        }
    }
    prop_assert_eq!(&*dense.words(), &expected_words[..], "dense words");
    prop_assert_eq!(&*comp.words(), &expected_words[..], "compressed words");

    // Iteration agrees with the model in order.
    let expect_iter: Vec<usize> = (0..model.len()).filter(|&i| model[i]).collect();
    prop_assert_eq!(dense.iter_ones().collect::<Vec<_>>(), expect_iter.clone());
    prop_assert_eq!(comp.iter_ones().collect::<Vec<_>>(), expect_iter);

    // Semantic equality and hashing see through the representation.
    prop_assert_eq!(dense, comp);
    prop_assert_eq!(comp, dense);
    prop_assert_eq!(hash_of(dense), hash_of(comp));
    Ok(())
}

/// An operand bitmap shaped to land in a specific container kind:
/// empty, full (runs), strided (arrays or bitmaps), solid runs, dense
/// noise, or sparse noise.
fn operand(len: usize, rng: &mut StdRng) -> Vec<bool> {
    match rng.gen_range(0u8..6) {
        0 => vec![false; len],
        1 => vec![true; len],
        2 => {
            let stride = rng.gen_range(1usize..=130);
            (0..len).map(|i| i % stride == 0).collect()
        }
        3 => {
            let a = if len == 0 { 0 } else { rng.gen_range(0..len) };
            let b = if len == 0 { 0 } else { rng.gen_range(a..=len) };
            (0..len).map(|i| i >= a && i < b).collect()
        }
        4 => (0..len).map(|_| rng.gen_bool(0.5)).collect(),
        _ => (0..len).map(|_| rng.gen_bool(1.0 / 400.0)).collect(),
    }
}

/// Apply one random operation to the model and both twins.
fn step(rng: &mut StdRng, model: &mut Vec<bool>, dense: &mut Bitmap, comp: &mut Bitmap) {
    match rng.gen_range(0u8..10) {
        0 => {
            // A burst of pushes (occasionally enough to cross a chunk
            // boundary from a near-boundary length).
            let n = if rng.gen_bool(0.2) {
                rng.gen_range(1..=300)
            } else {
                rng.gen_range(1..=48)
            };
            for _ in 0..n {
                let b = rng.gen_bool(0.5);
                model.push(b);
                dense.push(b);
                comp.push(b);
            }
        }
        1 if !model.is_empty() => {
            let i = rng.gen_range(0..model.len());
            model[i] = true;
            dense.set(i);
            comp.set(i);
        }
        2 if !model.is_empty() => {
            let i = rng.gen_range(0..model.len());
            model[i] = false;
            dense.unset(i);
            comp.unset(i);
        }
        op @ 3..=5 => {
            let other = operand(model.len(), rng);
            let other_dense = build(&other, false);
            // Mixed-representation coverage: the compressed twin sees a
            // compressed or dense operand at random.
            let other_for_comp = build(&other, rng.gen_bool(0.5));
            match op {
                3 => {
                    for (m, &o) in model.iter_mut().zip(&other) {
                        *m = *m && o;
                    }
                    *dense = dense.and(&other_dense);
                    *comp = comp.and(&other_for_comp);
                }
                4 => {
                    for (m, &o) in model.iter_mut().zip(&other) {
                        *m = *m || o;
                    }
                    *dense = dense.or(&other_dense);
                    *comp = comp.or(&other_for_comp);
                }
                _ => {
                    for (m, &o) in model.iter_mut().zip(&other) {
                        *m = *m && !o;
                    }
                    *dense = dense.and_not(&other_dense);
                    *comp = comp.and_not(&other_for_comp);
                }
            }
        }
        6 => {
            for m in model.iter_mut() {
                *m = !*m;
            }
            *dense = dense.not();
            *comp = comp.not();
        }
        7 => {
            // Append; one time in four, big enough to straddle a chunk.
            let extra = if rng.gen_bool(0.25) {
                rng.gen_range(CHUNK - 100..CHUNK + 100)
            } else {
                rng.gen_range(0..2000)
            };
            let other = operand(extra, rng);
            model.extend_from_slice(&other);
            dense.append(&build(&other, false));
            comp.append(&build(&other, rng.gen_bool(0.5)));
        }
        8 if !model.is_empty() => {
            let a = rng.gen_range(0..=model.len());
            let b = rng.gen_range(a..=model.len());
            *model = model[a..b].to_vec();
            *dense = dense.slice(a, b);
            *comp = comp.slice(a, b);
        }
        9 => {
            // Concat with a fresh part (result representation follows
            // the process default, so re-pin the compressed twin).
            let extra = rng.gen_range(0..1500);
            let other = operand(extra, rng);
            model.extend_from_slice(&other);
            let jd = Bitmap::concat([&dense.clone(), &build(&other, false)]);
            *dense = if jd.is_compressed() {
                jd.to_dense()
            } else {
                jd
            };
            let parts = [comp.clone(), build(&other, true)];
            let joined = Bitmap::concat(parts.iter());
            *comp = if joined.is_compressed() {
                joined
            } else {
                joined.compress()
            };
        }
        _ => {} // set/unset/slice on an empty bitmap: no-op round
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline differential property: a random sequence of every
    /// public mutating operation leaves the compressed twin bitwise
    /// identical to the retained dense representation and to the model.
    #[test]
    fn random_op_sequences_match_the_dense_oracle(
        seed in any::<u64>(),
        start_len in 0usize..1200,
        steps in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = operand(start_len, &mut rng);
        let mut dense = build(&model, false);
        let mut comp = build(&model, true);
        check(&model, &dense, &comp)?;
        for _ in 0..steps {
            step(&mut rng, &mut model, &mut dense, &mut comp);
            check(&model, &dense, &comp)?;
        }
        // Round-tripping the final state through the other layout is
        // lossless in both directions.
        check(&model, &comp.to_dense(), &dense.compress())?;
    }

    /// The query surface (no mutation): counting, subset and
    /// disjointness tests agree across every representation pairing.
    #[test]
    fn query_ops_agree_across_representation_pairings(
        seed in any::<u64>(),
        len in 0usize..(2 * CHUNK + 500),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = operand(len, &mut rng);
        let b = operand(len, &mut rng);
        let expected_and = a.iter().zip(&b).filter(|(&x, &y)| x && y).count();
        let expected_subset = a.iter().zip(&b).all(|(&x, &y)| !x || y);
        let ad = build(&a, false);
        let ac = build(&a, true);
        let bd = build(&b, false);
        let bc = build(&b, true);
        for x in [&ad, &ac] {
            for y in [&bd, &bc] {
                prop_assert_eq!(x.and_count(y), expected_and);
                prop_assert_eq!(x.is_disjoint(y), expected_and == 0);
                prop_assert_eq!(x.is_subset_of(y), expected_subset);
                prop_assert_eq!(x.and(y).count_ones(), expected_and);
            }
        }
        // Random-access reads agree everywhere.
        for _ in 0..64.min(len) {
            let i = rng.gen_range(0..len.max(1));
            prop_assert_eq!(ad.get(i), a[i]);
            prop_assert_eq!(ac.get(i), a[i]);
        }
    }

    /// `from_words` round-trips `words()` for both layouts and rejects
    /// malformed streams identically.
    #[test]
    fn word_streams_round_trip_for_both_layouts(
        seed in any::<u64>(),
        len in 0usize..(CHUNK + 500),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = operand(len, &mut rng);
        for compressed in [false, true] {
            let bm = build(&bits, compressed);
            let round = Bitmap::from_words(bm.words().into_owned(), len)
                .expect("words() output is always a valid stream");
            prop_assert_eq!(&round, &bm);
            // Wrong word count is rejected.
            let mut long = bm.words().into_owned();
            long.push(0);
            prop_assert!(Bitmap::from_words(long, len).is_none());
            // A bit beyond len is rejected.
            if len % 64 != 0 {
                let mut dirty = bm.words().into_owned();
                *dirty.last_mut().unwrap() |= 1u64 << (len % 64);
                prop_assert!(Bitmap::from_words(dirty, len).is_none());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic container-boundary edges.
// ---------------------------------------------------------------------

/// Exactly `ARRAY_MAX` values in a chunk sits on the array/bitmap
/// promotion threshold; one more crosses it. Both sides must be
/// invisible to every observer.
#[test]
fn array_promotion_threshold_is_invisible() {
    for extra in [0usize, 1, 2] {
        let n = ARRAY_MAX + extra;
        let bits: Vec<bool> = (0..CHUNK).map(|i| i % 16 == 0 && i / 16 < n).collect();
        assert_eq!(bits.iter().filter(|&&b| b).count(), n.min(CHUNK / 16));
        let dense = build(&bits, false);
        let comp = build(&bits, true);
        check(&bits, &dense, &comp).unwrap();
        // Mutating across the threshold in both directions.
        let mut up = comp.clone();
        up.set(1); // one more value: promotes at the boundary
        let mut model = bits.clone();
        model[1] = true;
        let mut dup = dense.clone();
        dup.set(1);
        check(&model, &dup, &up).unwrap();
        let mut down = up;
        down.unset(1);
        let mut ddown = dup;
        ddown.unset(1);
        check(&bits, &ddown, &down).unwrap();
    }
}

#[test]
fn all_set_runs_and_empty_chunks_round_trip() {
    // Three chunks: full · empty · half-full — run, empty and dense
    // containers side by side, with a ragged tail.
    let len = 2 * CHUNK + CHUNK / 2 + 17;
    let bits: Vec<bool> = (0..len)
        .map(|i| i < CHUNK || (i >= 2 * CHUNK && i % 2 == 0))
        .collect();
    let dense = build(&bits, false);
    let comp = build(&bits, true);
    check(&bits, &dense, &comp).unwrap();

    // The all-set bitmap is a run container per chunk; `ones` must agree
    // with the compressed constructor output.
    let ones_model = vec![true; len];
    check(
        &ones_model,
        &Bitmap::ones(len).to_dense(),
        &Bitmap::ones(len).compress(),
    )
    .unwrap();

    // Complement flips full ↔ empty chunks.
    let inv_model: Vec<bool> = bits.iter().map(|&b| !b).collect();
    check(&inv_model, &dense.not(), &comp.not()).unwrap();
}

#[test]
fn chunk_straddling_appends_and_slices() {
    // Build a three-chunk bitmap by appending parts whose seams land
    // off-boundary, then slice windows that straddle every seam.
    let seam_lens = [CHUNK - 3, 7, CHUNK + 11, 40];
    let mut rng = StdRng::seed_from_u64(0xC1D2);
    let mut model: Vec<bool> = Vec::new();
    let mut dense = Bitmap::new(0).to_dense();
    let mut comp = Bitmap::new(0).compress();
    for (k, &n) in seam_lens.iter().enumerate() {
        let part = operand(n, &mut rng);
        model.extend_from_slice(&part);
        dense.append(&build(&part, false));
        comp.append(&build(&part, k % 2 == 0));
        check(&model, &dense, &comp).unwrap();
    }
    let len = model.len();
    for (a, b) in [
        (0, len),
        (CHUNK - 5, CHUNK + 5),
        (CHUNK, 2 * CHUNK),
        (1, 2 * CHUNK + 13),
        (2 * CHUNK + 1, len),
        (len / 2, len / 2),
    ] {
        let m = model[a..b].to_vec();
        check(&m, &dense.slice(a, b), &comp.slice(a, b)).unwrap();
    }
}

#[test]
fn sparse_selections_compress_small() {
    // The scaling claim in miniature: a 0.1% selection over two chunks
    // must cost far less compressed than dense.
    let len = 2 * CHUNK;
    let bits: Vec<bool> = (0..len).map(|i| i % 1000 == 0).collect();
    let dense = build(&bits, false);
    let comp = build(&bits, true);
    check(&bits, &dense, &comp).unwrap();
    assert!(
        comp.resident_bytes() * 4 <= dense.resident_bytes(),
        "compressed {} B vs dense {} B",
        comp.resident_bytes(),
        dense.resident_bytes()
    );
}
