//! Save→load round-trip properties of the `.charles` on-disk format.
//!
//! Each case derives a random table deterministically from its seed —
//! every datatype, nulls everywhere, NaN-free floats spanning special
//! values (±0.0, extremes), empty strings, and a small string pool that
//! forces dictionary code reuse ("collisions") — writes it, reopens it
//! through [`DiskTable`], and pins **bitwise** equality: every cell,
//! float bit patterns included, and the order statistics the advisor
//! depends on.

use charles_store::disk::write_table;
use charles_store::{Backend, DataType, DiskTable, StorePredicate, TableBuilder, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tmp_path() -> std::path::PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "charles-roundtrip-{}-{n}.charles",
        std::process::id()
    ))
}

/// The string pool: empty string, duplicates-by-construction, a comma
/// case and non-ASCII.
const STRINGS: &[&str] = &["", "fluit", "jacht", "a", "aa", "de, lange", "ünïcode"];

/// Floats worth round-tripping exactly: signed zeros, subnormals,
/// extremes. (NaN is exercised by the in-crate raw-parts test — the
/// builder rejects it at ingestion.)
const SPECIAL_FLOATS: &[f64] = &[
    0.0,
    -0.0,
    f64::MIN,
    f64::MAX,
    f64::MIN_POSITIVE,
    5e-324, // smallest subnormal
    1.5,
    -2.25,
];

fn random_value(ty: DataType, rng: &mut StdRng) -> Value {
    match ty {
        DataType::Int => Value::Int(rng.gen::<u64>() as i64),
        DataType::Float => {
            if rng.gen_bool(0.4) {
                Value::Float(SPECIAL_FLOATS[rng.gen_range(0..SPECIAL_FLOATS.len())])
            } else {
                Value::Float(rng.gen_range(-1.0e12..1.0e12))
            }
        }
        DataType::Str => Value::str(STRINGS[rng.gen_range(0..STRINGS.len())]),
        DataType::Date => Value::Date(rng.gen_range(-1_000_000i64..1_000_000)),
        DataType::Bool => Value::Bool(rng.gen()),
    }
}

/// Bitwise value comparison: `Value::Float` goes through `to_bits` so
/// that -0.0 vs 0.0 (which `==` conflates) would be caught.
fn assert_value_bits_eq(a: &Option<Value>, b: &Option<Value>, what: &str) {
    match (a, b) {
        (Some(Value::Float(x)), Some(Value::Float(y))) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: float bits")
        }
        _ => assert_eq!(a, b, "{what}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_round_trip_is_bitwise(seed in any::<u64>(), rows in 0usize..140) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Every datatype at least once, plus a few duplicates of random
        // types so multi-column-per-type files are covered.
        let mut types = vec![
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
        ];
        for _ in 0..rng.gen_range(0..3usize) {
            types.push(types[rng.gen_range(0..5usize)]);
        }
        let mut b = TableBuilder::new("prop");
        for (i, ty) in types.iter().enumerate() {
            b.add_column(&format!("c{i}"), *ty);
        }
        for _ in 0..rows {
            let row: Vec<Option<Value>> = types
                .iter()
                .map(|&ty| (!rng.gen_bool(0.15)).then(|| random_value(ty, &mut rng)))
                .collect();
            b.push_row_opt(row).unwrap();
        }
        let t = b.finish();

        let path = tmp_path();
        write_table(&t, &path).unwrap();
        let d = DiskTable::open(&path).unwrap();

        // Schema, shape, whole-file checksum.
        prop_assert_eq!(d.len(), t.len());
        prop_assert_eq!(Backend::schema(&d), t.schema());
        d.verify().unwrap();

        // Every cell, bitwise.
        for (i, ty) in types.iter().enumerate() {
            let name = format!("c{i}");
            for row in 0..t.len() {
                assert_value_bits_eq(
                    &d.value_of(&name, row),
                    &t.value(row, &name).unwrap(),
                    &format!("cell ({row}, {name}) of type {ty:?}"),
                );
            }
        }

        // The operations the advisor issues, over a random predicate.
        let lo = rng.gen_range(-1_000i64..0);
        let hi = lo + rng.gen_range(0i64..2_000);
        let pred = StorePredicate::range("c0", Value::Int(lo), Value::Int(hi), rng.gen());
        prop_assert_eq!(d.eval(&pred).unwrap(), t.eval(&pred).unwrap());
        let sel = t.eval(&pred).unwrap();
        assert_value_bits_eq(
            &d.median("c1", &sel).unwrap(),
            &t.median("c1", &sel).unwrap(),
            "median over selection",
        );
        let all = t.all_rows();
        assert_value_bits_eq(
            &d.median("c1", &all).unwrap(),
            &t.median("c1", &all).unwrap(),
            "median over all rows",
        );
        let (df, dd) = d.frequencies("c2", &all).unwrap();
        let (tf, td) = t.frequencies("c2", &all).unwrap();
        prop_assert_eq!(dd, td, "dictionary order must be preserved");
        prop_assert_eq!(df.entries(), tf.entries());

        std::fs::remove_file(&path).unwrap();
    }
}

/// Accessor shim: `DiskTable` has no `value()` helper like `Table`;
/// reach through the lazily loaded column.
trait ValueOf {
    fn value_of(&self, column: &str, row: usize) -> Option<Value>;
}

impl ValueOf for DiskTable {
    fn value_of(&self, column: &str, row: usize) -> Option<Value> {
        self.column(column).unwrap().get(row)
    }
}
