//! Property-based tests of the storage substrate: bitmap algebra,
//! order statistics, predicate scans, CSV round-trips, and the
//! column-store/row-store equivalence.

use charles_store::{
    exact_median, quantile_value, read_csv_str, write_csv_string, Backend, Bitmap, DataType,
    RowTable, StorePredicate, TableBuilder, Value,
};
use proptest::prelude::*;

fn arb_bitmap(len: usize) -> impl Strategy<Value = Bitmap> {
    proptest::collection::vec(any::<bool>(), len).prop_map(move |bits| {
        let mut bm = Bitmap::new(len);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_de_morgan(len in 1usize..300, seed in any::<u64>()) {
        // Derive two bitmaps deterministically from the seed.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = Bitmap::new(len);
        let mut b = Bitmap::new(len);
        for i in 0..len {
            if rng.gen_bool(0.5) { a.set(i); }
            if rng.gen_bool(0.3) { b.set(i); }
        }
        // ¬(a ∪ b) = ¬a ∩ ¬b
        let lhs = a.or(&b).not();
        let rhs = a.not().and(&b.not());
        prop_assert_eq!(&lhs, &rhs);
        // |a| + |b| = |a ∪ b| + |a ∩ b|
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.or(&b).count_ones() + a.and_count(&b)
        );
        // a \ b disjoint from b, and (a\b) ∪ (a∩b) = a
        let diff = a.and_not(&b);
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(&diff.or(&a.and(&b)), &a);
    }

    #[test]
    fn bitmap_iter_matches_get(bm in arb_bitmap(200)) {
        let from_iter: Vec<usize> = bm.iter_ones().collect();
        let from_get: Vec<usize> = (0..200).filter(|&i| bm.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
    }

    #[test]
    fn median_and_quantiles_match_sorted_reference(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        // Median: between min and max, and equals the sorted definition.
        let med = exact_median(&mut values.clone()).unwrap();
        let n = sorted.len();
        let reference = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        prop_assert!((med - reference).abs() < 1e-9, "median {med} vs {reference}");
        // Quantile: nearest-rank definition.
        let qv = quantile_value(&mut values, q).unwrap();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        prop_assert_eq!(qv, sorted[k]);
    }

    #[test]
    fn range_scan_matches_naive_filter(
        values in proptest::collection::vec(-100i64..100, 1..150),
        lo in -100i64..100,
        width in 0i64..100,
        inclusive in any::<bool>(),
    ) {
        let hi = lo + width;
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for &v in &values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let t = b.finish();
        let pred = StorePredicate::range("x", Value::Int(lo), Value::Int(hi), inclusive);
        let got = t.eval(&pred).unwrap();
        let expected: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && if inclusive { v <= hi } else { v < hi })
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn set_scan_matches_naive_filter(
        values in proptest::collection::vec(0i64..20, 1..150),
        wanted in proptest::collection::vec(0i64..20, 0..8),
    ) {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for &v in &values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let t = b.finish();
        let pred = StorePredicate::set("x", wanted.iter().map(|&v| Value::Int(v)).collect());
        let got = t.eval(&pred).unwrap().count_ones();
        let expected = values.iter().filter(|v| wanted.contains(v)).count();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn csv_round_trip_arbitrary_strings(
        rows in proptest::collection::vec(
            ("[ -~]{0,20}", proptest::option::of(-1000i64..1000)),
            0..40,
        ),
    ) {
        let mut b = TableBuilder::new("t");
        b.add_column("s", DataType::Str).add_column("x", DataType::Int);
        for (s, x) in &rows {
            // CSV cannot represent strings with surrounding whitespace
            // faithfully (fields are trimmed at parse); normalise first.
            let s = s.trim().to_string();
            b.push_row_opt(vec![Some(Value::Str(s)), x.map(Value::Int)]).unwrap();
        }
        let t = b.finish();
        let text = write_csv_string(&t);
        let t2 = read_csv_str("t2", &text).unwrap();
        prop_assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            prop_assert_eq!(t.value(i, "s").unwrap(), t2.value(i, "s").unwrap());
            prop_assert_eq!(t.value(i, "x").unwrap(), t2.value(i, "x").unwrap());
        }
    }

    #[test]
    fn engines_agree_on_arbitrary_predicates(
        values in proptest::collection::vec((0i64..50, 0usize..4), 1..120),
        lo in 0i64..50,
        width in 0i64..50,
        cat in 0usize..4,
    ) {
        let cats = ["red", "green", "blue", "grey"];
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int).add_column("k", DataType::Str);
        for &(x, c) in &values {
            b.push_row(vec![Value::Int(x), Value::str(cats[c])]).unwrap();
        }
        let col = b.finish();
        let row = RowTable::from_table(&col);
        let pred = StorePredicate::and(vec![
            StorePredicate::range("x", Value::Int(lo), Value::Int(lo + width), true),
            StorePredicate::set("k", vec![Value::str(cats[cat])]),
        ]);
        prop_assert_eq!(col.count(&pred).unwrap(), row.count(&pred).unwrap());
        // Medians agree on the matching rows (when any).
        let sel_c = col.eval(&pred).unwrap();
        let sel_r = row.eval(&pred).unwrap();
        let mc = col.median("x", &sel_c).unwrap().map(|v| v.as_f64().unwrap());
        let mr = row.median("x", &sel_r).unwrap().map(|v| v.as_f64().unwrap());
        prop_assert_eq!(mc, mr);
        // And mean/variance agree too.
        let vc = col.mean_and_var("x", &sel_c).unwrap();
        let vr = row.mean_and_var("x", &sel_r).unwrap();
        match (vc, vr) {
            (Some((m1, v1)), Some((m2, v2))) => {
                prop_assert!((m1 - m2).abs() < 1e-9);
                prop_assert!((v1 - v2).abs() < 1e-9);
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn next_above_is_least_upper_neighbor(
        values in proptest::collection::vec(0i64..100, 1..100),
        pivot in 0i64..100,
    ) {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for &v in &values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let t = b.finish();
        let got = t.next_above("x", &t.all_rows(), &Value::Int(pivot)).unwrap();
        let expected = values.iter().copied().filter(|&v| v > pivot).min();
        prop_assert_eq!(got, expected.map(Value::Int));
    }
}
