//! 100%-stacked bars: the compact segmentation preview of the ranked list.

use crate::format::{percent, slice_glyph};

/// Render weights as a single-line stacked bar of the given width, e.g.
/// `████▓▓▒▒` for three pieces of 50/25/25%. Every non-zero weight gets
/// at least one cell so small segments stay visible.
pub fn stacked_bar(weights: &[f64], width: usize) -> String {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 || width == 0 {
        return " ".repeat(width);
    }
    // First pass: one guaranteed cell per non-zero weight.
    let positive: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .filter(|(_, w)| w.is_finite() && **w > 0.0)
        .map(|(i, w)| (i, *w))
        .collect();
    let mut cells: Vec<usize> = positive.iter().map(|_| 1usize).collect();
    let mut used: usize = cells.iter().sum();
    if used > width {
        // More segments than cells: trail off with the last ones dropped.
        cells.truncate(width);
        used = width;
    }
    // Second pass: distribute the remaining cells by largest remainder.
    let spare = width - used;
    if spare > 0 {
        let mut shares: Vec<(usize, f64)> = positive
            .iter()
            .take(cells.len())
            .enumerate()
            .map(|(k, (_, w))| (k, w / total * spare as f64))
            .collect();
        let mut given = 0usize;
        for (k, share) in &shares {
            let whole = share.floor() as usize;
            cells[*k] += whole;
            given += whole;
        }
        shares.sort_by(|a, b| {
            (b.1 - b.1.floor())
                .partial_cmp(&(a.1 - a.1.floor()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (k, _) in shares.iter().take(spare - given) {
            cells[*k] += 1;
        }
    }
    let mut out = String::with_capacity(width * 3);
    for (k, (i, _)) in positive.iter().take(cells.len()).enumerate() {
        for _ in 0..cells[k] {
            out.push(slice_glyph(*i));
        }
    }
    out
}

/// A legend line per segment: glyph, percentage, label.
pub fn bar_legend(labels: &[String], weights: &[f64]) -> String {
    let total: f64 = weights.iter().sum();
    let mut out = String::new();
    for (i, (label, w)) in labels.iter().zip(weights).enumerate() {
        let frac = if total > 0.0 { w / total } else { 0.0 };
        out.push_str(&format!(
            "{} {:>6}  {}\n",
            slice_glyph(i),
            percent(frac),
            label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_has_requested_width() {
        let b = stacked_bar(&[0.5, 0.25, 0.25], 16);
        assert_eq!(b.chars().count(), 16);
    }

    #[test]
    fn proportions_roughly_respected() {
        let b = stacked_bar(&[0.75, 0.25], 16);
        let big = b.chars().filter(|&c| c == slice_glyph(0)).count();
        assert!((11..=13).contains(&big), "{b}");
    }

    #[test]
    fn tiny_segments_still_visible() {
        let b = stacked_bar(&[0.98, 0.01, 0.01], 10);
        assert!(b.contains(slice_glyph(1)));
        assert!(b.contains(slice_glyph(2)));
    }

    #[test]
    fn zero_weights_skipped() {
        let b = stacked_bar(&[0.5, 0.0, 0.5], 10);
        assert!(!b.contains(slice_glyph(1)));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(stacked_bar(&[], 5), "     ");
        assert_eq!(stacked_bar(&[0.0], 5), "     ");
        assert_eq!(stacked_bar(&[1.0], 0), "");
    }

    #[test]
    fn legend_lines_up() {
        let legend = bar_legend(&["first".to_string(), "second".to_string()], &[3.0, 1.0]);
        assert!(legend.contains("75.0%"));
        assert!(legend.contains("25.0%"));
        assert!(legend.contains("first"));
        assert_eq!(legend.lines().count(), 2);
    }
}
