//! Small formatting helpers shared by the renderers.

/// Human-readable row counts: `950`, `1.2k`, `3.4M`.
pub fn human_count(n: usize) -> String {
    if n < 1_000 {
        n.to_string()
    } else if n < 1_000_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        format!("{:.1}M", n as f64 / 1e6)
    }
}

/// Percentage with one decimal: `37.5%`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Truncate a label to `max` characters, appending `…` when shortened.
pub fn truncate_label(s: &str, max: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let count = s.chars().count();
    if count <= max {
        s.to_string()
    } else {
        let kept: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{kept}…")
    }
}

/// The glyph used for slice `i` in pies, bars and legends. Cycles after 16.
pub fn slice_glyph(i: usize) -> char {
    const GLYPHS: [char; 16] = [
        '█', '▓', '▒', '░', '◆', '◇', '●', '○', '▲', '△', '■', '□', '★', '☆', '◼', '◻',
    ];
    GLYPHS[i % GLYPHS.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(human_count(950), "950");
        assert_eq!(human_count(1_234), "1.2k");
        assert_eq!(human_count(3_400_000), "3.4M");
    }

    #[test]
    fn percents() {
        assert_eq!(percent(0.375), "37.5%");
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(0.0), "0.0%");
    }

    #[test]
    fn truncation() {
        assert_eq!(truncate_label("short", 10), "short");
        assert_eq!(truncate_label("a-very-long-label", 8), "a-very-…");
        assert_eq!(truncate_label("exact", 5), "exact");
        assert_eq!(truncate_label("x", 0), "");
        // Unicode-safe.
        assert_eq!(truncate_label("ぱぱぱぱ", 3), "ぱぱ…");
    }

    #[test]
    fn glyphs_cycle() {
        assert_eq!(slice_glyph(0), slice_glyph(16));
        assert_ne!(slice_glyph(0), slice_glyph(1));
    }
}
