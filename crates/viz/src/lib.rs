//! `charles-viz` — terminal renderings of Charles' answers.
//!
//! The original GUI (paper Figure 1) is a Python application: a left panel
//! with the search context, a top panel with the ranked answer list (one
//! pie chart per segmentation), and a main panel detailing the selected
//! segmentation. This crate reproduces that layout for the terminal:
//!
//! * [`pie`] — a raster pie chart built from Unicode block characters
//!   ("each SDL set is represented by a pie-chart where each slice is
//!   represented by an SDL query");
//! * [`bar`] — 100%-stacked bars + per-segment legends, the compact form
//!   used in the ranked list;
//! * [`mod@treemap`] — slice-and-dice tree-map and [`multipie`] — two-ring
//!   pies, the paper's own suggestions for hierarchical display (§5.2);
//! * [`spark`] — per-segment attribute-distribution sparklines (§5.2
//!   "the distribution of some attributes could be plotted");
//! * [`panel`] — the full Figure 1 composition.
//!
//! Everything renders to plain `String`s: no terminal-control crate, no
//! colors, so output is testable and pipes cleanly.

pub mod bar;
pub mod format;
pub mod multipie;
pub mod panel;
pub mod pie;
pub mod spark;
pub mod treemap;

pub use bar::stacked_bar;
pub use format::{human_count, percent, truncate_label};
pub use multipie::{multi_level_pie, PieLevel};
pub use panel::{context_panel, render_panel, segment_rows, SegmentRow};
pub use pie::pie_chart;
pub use spark::{histogram, segment_sparklines, sparkline};
pub use treemap::treemap;
