//! Multi-level (two-ring) pies (§5.2: "the display could be clarified
//! with hierarchical visualizations, such as tree-maps or multi-level
//! pies").
//!
//! The inner ring shows a coarse grouping (e.g. the first cut of a
//! composition), the outer ring the full segmentation. Both rings share
//! the angular layout, so a child's arc lies within its parent's arc —
//! the composition structure of HB-cuts becomes visible at a glance.

use crate::format::slice_glyph;

/// Arcs of one ring: `(glyph index, weight)` per slice.
type RingArcs = Vec<(usize, f64)>;

/// A hierarchical weight spec: one inner group per entry, each carrying
/// the weights of its children (the outer slices).
#[derive(Debug, Clone)]
pub struct PieLevel {
    /// Child weights, grouped by parent. Parent weight = sum of children.
    pub groups: Vec<Vec<f64>>,
}

impl PieLevel {
    /// Flatten into `(glyph index, weight)` arcs for the two rings. The
    /// inner ring borrows the glyph of each group's first non-zero child,
    /// so a parent and its children share a visual identity and the
    /// glyphs of zero-weight children never appear.
    fn arcs(&self) -> (RingArcs, RingArcs) {
        let mut inner = Vec::new();
        let mut outer = Vec::new();
        let mut child_idx = 0usize;
        for children in &self.groups {
            let total: f64 = children.iter().filter(|w| **w > 0.0).sum();
            let first_nonzero = children
                .iter()
                .position(|w| *w > 0.0)
                .map(|off| child_idx + off);
            if let (true, Some(glyph)) = (total > 0.0, first_nonzero) {
                inner.push((glyph, total));
            }
            for w in children {
                if *w > 0.0 {
                    outer.push((child_idx, *w));
                }
                child_idx += 1;
            }
        }
        (inner, outer)
    }
}

/// Render a two-ring pie: inner ring = groups, outer ring = children.
/// `radius` is the outer character radius; the inner ring ends at half.
pub fn multi_level_pie(level: &PieLevel, radius: usize) -> String {
    let (inner, outer) = level.arcs();
    let inner_total: f64 = inner.iter().map(|(_, w)| w).sum();
    let outer_total: f64 = outer.iter().map(|(_, w)| w).sum();
    let r = radius.max(3) as f64;
    let r_inner = r * 0.55;

    let bounds = |arcs: &[(usize, f64)], total: f64| -> Vec<(usize, f64)> {
        let mut acc = 0.0;
        arcs.iter()
            .map(|(i, w)| {
                acc += w / total;
                (*i, acc * std::f64::consts::TAU)
            })
            .collect()
    };
    let inner_bounds = bounds(&inner, inner_total.max(1e-12));
    let outer_bounds = bounds(&outer, outer_total.max(1e-12));

    let mut out = String::new();
    let size = radius.max(3) as isize;
    for y in -size..=size {
        for x in -(2 * size)..=(2 * size) {
            let fx = x as f64 / 2.0;
            let fy = y as f64;
            let dist = (fx * fx + fy * fy).sqrt();
            if dist > r + 0.25 || inner_total <= 0.0 {
                out.push(' ');
                continue;
            }
            let angle = fx.atan2(-fy).rem_euclid(std::f64::consts::TAU);
            let ring = if dist <= r_inner {
                &inner_bounds
            } else {
                &outer_bounds
            };
            let slice = ring
                .iter()
                .find(|(_, end)| angle <= *end)
                .map(|(i, _)| *i)
                .or_else(|| ring.last().map(|(i, _)| *i));
            match slice {
                Some(i) => out.push(slice_glyph(i)),
                None => out.push(' '),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> PieLevel {
        PieLevel {
            groups: vec![vec![0.25, 0.25], vec![0.3, 0.2]],
        }
    }

    #[test]
    fn renders_both_rings() {
        let p = multi_level_pie(&level(), 8);
        // Inner ring uses glyphs 0 and 1 (two groups); outer uses 0..=3
        // (four children). Children 2 and 3 appear only in the outer ring.
        for i in 0..4 {
            assert!(p.contains(slice_glyph(i)), "glyph {i} missing:\n{p}");
        }
    }

    #[test]
    fn children_nest_within_parents_angularly() {
        // Both groups hold 50% of the weight, so the glyph mass of group 0
        // (inner glyph 0 + outer glyphs 0,1) must be within tolerance of
        // group 1's (inner glyph 2 + outer glyphs 2,3).
        let p = multi_level_pie(&level(), 10);
        let count = |g: usize| p.chars().filter(|&c| c == slice_glyph(g)).count() as f64;
        let g0 = count(0) + count(1);
        let g1 = count(2) + count(3);
        assert!(g0 > 0.0 && g1 > 0.0);
        let ratio = g0 / g1;
        assert!(
            (0.75..=1.33).contains(&ratio),
            "equal-weight groups should cover similar areas, ratio {ratio}"
        );
    }

    #[test]
    fn zero_weight_children_are_skipped() {
        let level = PieLevel {
            groups: vec![vec![1.0, 0.0], vec![1.0]],
        };
        let p = multi_level_pie(&level, 6);
        assert!(!p.contains(slice_glyph(1)), "zero-weight child visible");
        assert!(p.contains(slice_glyph(2)));
    }

    #[test]
    fn empty_input_renders_blank() {
        let level = PieLevel { groups: vec![] };
        let p = multi_level_pie(&level, 5);
        assert!(p.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn dimensions_match_radius() {
        let p = multi_level_pie(&level(), 7);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 15); // 2r + 1
        assert!(lines.iter().all(|l| l.chars().count() == 29)); // 4r + 1
    }
}
