//! The Figure 1 layout: context panel, ranked answers, detail view.

use crate::bar::{bar_legend, stacked_bar};
use crate::format::{human_count, truncate_label};
use crate::pie::pie_chart;
use charles_core::Advice;
use charles_sdl::{eval, Query, Segmentation};
use charles_store::{Backend, StoreResult};

/// One row of the detail view: a segment with its statistics.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Rendered SDL query.
    pub label: String,
    /// Rows selected.
    pub count: usize,
    /// Fraction of the context.
    pub cover: f64,
}

/// Compute the per-segment rows of a segmentation against a backend,
/// relative to the context cardinality.
pub fn segment_rows(
    backend: &dyn Backend,
    seg: &Segmentation,
    context_size: usize,
) -> StoreResult<Vec<SegmentRow>> {
    seg.queries()
        .iter()
        .map(|q| {
            let count = eval::count(q, backend)?;
            Ok(SegmentRow {
                label: q.to_string(),
                count,
                cover: if context_size > 0 {
                    count as f64 / context_size as f64
                } else {
                    0.0
                },
            })
        })
        .collect()
}

/// Render the whole Figure 1 screen: the context on top, the ranked
/// answer strip, then the detail view of answer `selected` with a pie
/// chart and per-segment legend.
pub fn render_panel(
    backend: &dyn Backend,
    advice: &Advice,
    selected: usize,
    width: usize,
) -> StoreResult<String> {
    let width = width.clamp(40, 160);
    let mut out = String::new();
    out.push_str(&format!("┌─ Charles ─ context {}\n", advice.context));
    out.push_str(&format!(
        "│ {} rows in context\n",
        human_count(advice.context_size)
    ));
    out.push_str("├─ ranked answers\n");
    for (i, r) in advice.ranked.iter().enumerate().take(10) {
        let rows = segment_rows(backend, &r.segmentation, advice.context_size)?;
        let weights: Vec<f64> = rows.iter().map(|s| s.cover).collect();
        let marker = if i == selected { '▶' } else { ' ' };
        let attrs = r.segmentation.attributes().join(", ");
        out.push_str(&format!(
            "│{marker}{i:>2}. [{}] E={:.2} P={} B={} {}\n",
            stacked_bar(&weights, 24),
            r.score.entropy,
            r.score.simplicity,
            r.score.breadth,
            truncate_label(&attrs, width.saturating_sub(50)),
        ));
    }
    if let Some(r) = advice.ranked.get(selected) {
        out.push_str("├─ selected segmentation\n");
        let rows = segment_rows(backend, &r.segmentation, advice.context_size)?;
        let weights: Vec<f64> = rows.iter().map(|s| s.cover).collect();
        for line in pie_chart(&weights, 5).lines() {
            out.push_str("│   ");
            out.push_str(line);
            out.push('\n');
        }
        let labels: Vec<String> = rows
            .iter()
            .map(|s| {
                format!(
                    "{}  ({} rows)",
                    truncate_label(&s.label, width.saturating_sub(24)),
                    human_count(s.count)
                )
            })
            .collect();
        for line in bar_legend(&labels, &weights).lines() {
            out.push_str("│ ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("└─\n");
    Ok(out)
}

/// Render the context query as the paper's left panel: one attribute per
/// line, constraints shown where present.
pub fn context_panel(context: &Query) -> String {
    let mut out = String::from("┌─ search context\n");
    for p in context.predicates() {
        if p.is_constraining() {
            out.push_str(&format!("│ {:<20} {}\n", p.attr, p.constraint));
        } else {
            out.push_str(&format!("│ {:<20} —\n", p.attr));
        }
    }
    out.push_str("└─\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_core::Advisor;
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..32i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn segment_rows_cover_sums_to_one() {
        let t = table();
        let advice = Advisor::new(&t).advise_str("(kind: , size: )").unwrap();
        let rows = segment_rows(&t, &advice.ranked[0].segmentation, advice.context_size).unwrap();
        let total: f64 = rows.iter().map(|r| r.cover).sum();
        assert!((total - 1.0).abs() < 1e-9, "covers sum to {total}");
    }

    #[test]
    fn panel_renders_all_sections() {
        let t = table();
        let advice = Advisor::new(&t).advise_str("(kind: , size: )").unwrap();
        let panel = render_panel(&t, &advice, 0, 100).unwrap();
        assert!(panel.contains("Charles"));
        assert!(panel.contains("ranked answers"));
        assert!(panel.contains("selected segmentation"));
        assert!(panel.contains("E="));
        assert!(panel.contains('▶'));
    }

    #[test]
    fn panel_selected_out_of_range_omits_detail() {
        let t = table();
        let advice = Advisor::new(&t).advise_str("(kind: , size: )").unwrap();
        let panel = render_panel(&t, &advice, 999, 100).unwrap();
        assert!(!panel.contains("selected segmentation"));
    }

    #[test]
    fn context_panel_shows_constraints_and_wildcards() {
        let t = table();
        let q = charles_sdl::parse_query("(kind: {even}, size: )", t.schema()).unwrap();
        let panel = context_panel(&q);
        assert!(panel.contains("{even}"));
        assert!(panel.contains('—'));
    }
}
