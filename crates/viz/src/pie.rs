//! Raster pie charts from Unicode block glyphs.
//!
//! "Each pie-chart represents a set of queries, cutting the database into
//! disjoint pieces" — this renders one, by rasterising a disc onto a
//! character grid and assigning each cell to the slice whose angular
//! interval contains it. Terminal cells are ~2× taller than wide, so the
//! x-axis is sampled at double resolution to keep the disc round.

use crate::format::slice_glyph;

/// Render a pie of the given character radius (height = `2r+1` lines).
/// Weights of zero produce no slice; an all-zero input renders an empty
/// disc of spaces.
pub fn pie_chart(weights: &[f64], radius: usize) -> String {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    let r = radius.max(2) as f64;
    // Cumulative angular boundaries, starting at 12 o'clock, clockwise.
    let mut bounds: Vec<(usize, f64)> = Vec::new(); // (slice index, end angle)
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        if *w > 0.0 && total > 0.0 {
            acc += w / total;
            bounds.push((i, acc * std::f64::consts::TAU));
        }
    }
    let mut out = String::new();
    let size = radius.max(2) as isize;
    for y in -size..=size {
        for x in -(2 * size)..=(2 * size) {
            // Compress x by 2 to correct the cell aspect ratio.
            let fx = x as f64 / 2.0;
            let fy = y as f64;
            let dist = (fx * fx + fy * fy).sqrt();
            if dist > r + 0.25 {
                out.push(' ');
                continue;
            }
            if bounds.is_empty() {
                out.push(' ');
                continue;
            }
            // Angle from 12 o'clock, clockwise, in [0, TAU).
            let angle = fx.atan2(-fy).rem_euclid(std::f64::consts::TAU);
            let slice = bounds
                .iter()
                .find(|(_, end)| angle <= *end)
                .map(|(i, _)| *i)
                .unwrap_or(bounds.last().expect("non-empty").0);
            out.push(slice_glyph(slice));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let p = pie_chart(&[1.0], 4);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 9); // 2r + 1
        assert!(lines.iter().all(|l| l.chars().count() == 17)); // 4r + 1
    }

    #[test]
    fn single_slice_uses_one_glyph() {
        let p = pie_chart(&[1.0], 4);
        let glyphs: std::collections::BTreeSet<char> =
            p.chars().filter(|c| *c != ' ' && *c != '\n').collect();
        assert_eq!(glyphs.len(), 1);
    }

    #[test]
    fn slice_area_tracks_weight() {
        let p = pie_chart(&[0.75, 0.25], 8);
        let big = p.chars().filter(|&c| c == slice_glyph(0)).count();
        let small = p.chars().filter(|&c| c == slice_glyph(1)).count();
        let frac = big as f64 / (big + small) as f64;
        assert!((0.65..=0.85).contains(&frac), "big fraction {frac}");
    }

    #[test]
    fn zero_weight_slices_invisible() {
        let p = pie_chart(&[0.5, 0.0, 0.5], 5);
        assert!(!p.contains(slice_glyph(1)));
        assert!(p.contains(slice_glyph(0)));
        assert!(p.contains(slice_glyph(2)));
    }

    #[test]
    fn all_zero_renders_blank_disc() {
        let p = pie_chart(&[0.0, 0.0], 4);
        assert!(p.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn many_slices_all_present() {
        let p = pie_chart(&[1.0; 8], 8);
        for i in 0..8 {
            assert!(p.contains(slice_glyph(i)), "slice {i} missing");
        }
    }
}
