//! Distribution sparklines (§5.2: "the only information that Charles
//! gives about the segments is their counts. It may be interesting to
//! display more. For instance, the distribution of some attributes could
//! be plotted").
//!
//! A sparkline is a one-line histogram in block glyphs (`▁▂▃▄▅▆▇█`),
//! cheap enough to attach to every segment of a detail view.

use charles_sdl::{eval, Query};
use charles_store::{Backend, Bitmap, StorePredicate, StoreResult, Value};

const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render raw bin counts as a sparkline.
pub fn sparkline(counts: &[usize]) -> String {
    let max = counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁".repeat(counts.len());
    }
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                LEVELS[0]
            } else {
                // Non-zero bins start at level 2 so presence is visible.
                let idx = 1 + (c * (LEVELS.len() - 2)) / max;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Equal-width histogram of a numeric column over a selection, computed
/// with `bins` range counts through the backend (no raw data access —
/// exactly what a SQL front-end could issue).
pub fn histogram(
    backend: &dyn Backend,
    column: &str,
    sel: &Bitmap,
    bins: usize,
) -> StoreResult<Vec<usize>> {
    let bins = bins.max(1);
    let Some((min, max)) = backend.min_max(column, sel)? else {
        return Ok(vec![0; bins]);
    };
    let (lo, hi) = (
        min.as_f64()
            .ok_or_else(|| charles_store::StoreError::TypeMismatch {
                column: column.to_string(),
                expected: "numeric".into(),
                found: "nominal".into(),
            })?,
        max.as_f64().expect("same family as min"),
    );
    if lo == hi {
        let mut counts = vec![0; bins];
        counts[0] = sel.count_ones();
        return Ok(counts);
    }
    let width = (hi - lo) / bins as f64;
    let mut counts = Vec::with_capacity(bins);
    for i in 0..bins {
        let a = lo + width * i as f64;
        let b = if i == bins - 1 {
            hi
        } else {
            lo + width * (i + 1) as f64
        };
        let pred = StorePredicate::range(column, Value::Float(a), Value::Float(b), i == bins - 1);
        let bm = backend.eval(&pred)?;
        counts.push(bm.and_count(sel));
    }
    Ok(counts)
}

/// One sparkline per segment of a segmentation, for a numeric attribute:
/// bins are computed over the **context** range so the lines are
/// comparable across segments.
pub fn segment_sparklines(
    backend: &dyn Backend,
    queries: &[Query],
    column: &str,
    context: &Bitmap,
    bins: usize,
) -> StoreResult<Vec<String>> {
    let Some((min, max)) = backend.min_max(column, context)? else {
        return Ok(queries.iter().map(|_| String::new()).collect());
    };
    let (lo, hi) = (min.as_f64().unwrap_or(0.0), max.as_f64().unwrap_or(0.0));
    let bins = bins.max(1);
    let width = if hi > lo {
        (hi - lo) / bins as f64
    } else {
        1.0
    };
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let sel = eval::selection(q, backend)?;
        let mut counts = Vec::with_capacity(bins);
        for i in 0..bins {
            let a = lo + width * i as f64;
            let b = if i == bins - 1 {
                hi
            } else {
                lo + width * (i + 1) as f64
            };
            let pred =
                StorePredicate::range(column, Value::Float(a), Value::Float(b), i == bins - 1);
            counts.push(backend.eval(&pred)?.and_count(&sel));
        }
        out.push(sparkline(&counts));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        // Values concentrated near 0 with a thin tail to 99.
        for i in 0..100i64 {
            let v = if i < 80 { i % 10 } else { i };
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let line = sparkline(&[1, 5, 10]);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 3);
        assert!(chars[0] < chars[2], "{line}");
        // Zero bins render the baseline glyph, non-zero never do.
        let mixed = sparkline(&[0, 3]);
        assert!(mixed.starts_with('▁'));
        assert!(!mixed.ends_with('▁'));
    }

    #[test]
    fn histogram_counts_sum_to_selection() {
        let t = table();
        let sel = t.all_rows();
        let h = histogram(&t, "x", &sel, 10).unwrap();
        assert_eq!(h.len(), 10);
        assert_eq!(h.iter().sum::<usize>(), 100);
        // Mass concentrates in the first bin (values 0..9 ≈ 80 rows).
        assert!(h[0] > 50, "{h:?}");
    }

    #[test]
    fn histogram_on_constant_column() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for _ in 0..5 {
            b.push_row(vec![Value::Int(3)]).unwrap();
        }
        let t = b.finish();
        let h = histogram(&t, "x", &t.all_rows(), 4).unwrap();
        assert_eq!(h, vec![5, 0, 0, 0]);
    }

    #[test]
    fn histogram_nominal_errors() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        b.push_row(vec![Value::str("a")]).unwrap();
        let t = b.finish();
        assert!(histogram(&t, "k", &t.all_rows(), 4).is_err());
    }

    #[test]
    fn segment_sparklines_are_comparable() {
        let t = table();
        let schema = t.schema();
        let lo = charles_sdl::parse_query("(x: [0,9])", schema).unwrap();
        let hi = charles_sdl::parse_query("(x: [80,99])", schema).unwrap();
        let lines = segment_sparklines(&t, &[lo, hi], "x", &t.all_rows(), 10).unwrap();
        assert_eq!(lines.len(), 2);
        // The low segment's mass is on the left, the tail segment's on the
        // right — visible as non-baseline glyphs at opposite ends.
        assert!(!lines[0].starts_with('▁'));
        assert!(lines[0].ends_with('▁'));
        assert!(lines[1].starts_with('▁'));
        assert!(!lines[1].ends_with('▁'));
    }
}
