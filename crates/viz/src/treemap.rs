//! Slice-and-dice tree-map.
//!
//! §5.2: "the display could be clarified with hierarchical visualizations,
//! such as tree-maps or multi-level pies." This is the classic
//! slice-and-dice layout: alternate horizontal/vertical splits of a
//! character rectangle proportionally to the weights, one labelled box per
//! segment.

use crate::format::{slice_glyph, truncate_label};

#[derive(Debug, Clone, Copy)]
struct Rect {
    x: usize,
    y: usize,
    w: usize,
    h: usize,
}

/// Render a tree-map of the weights into a `width × height` character
/// grid. Labels are painted into their boxes when they fit.
pub fn treemap(labels: &[String], weights: &[f64], width: usize, height: usize) -> String {
    let mut grid = vec![vec![' '; width]; height];
    let items: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .filter(|(_, w)| w.is_finite() && **w > 0.0)
        .map(|(i, w)| (i, *w))
        .collect();
    if width > 0 && height > 0 && !items.is_empty() {
        layout(
            &items,
            Rect {
                x: 0,
                y: 0,
                w: width,
                h: height,
            },
            true,
            &mut grid,
        );
        // Paint labels after the fills so they stay readable.
        paint_labels(&items, labels, width, height, &mut grid);
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

fn layout(items: &[(usize, f64)], rect: Rect, horizontal: bool, grid: &mut [Vec<char>]) {
    if items.is_empty() || rect.w == 0 || rect.h == 0 {
        return;
    }
    if items.len() == 1 {
        fill(rect, slice_glyph(items[0].0), grid);
        return;
    }
    // Split the item list at half the weight, recurse on both sides with
    // the orientation flipped (slice-and-dice).
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    let mut split = 1;
    for (k, (_, w)) in items.iter().enumerate() {
        acc += w;
        if acc >= total / 2.0 {
            split = (k + 1).min(items.len() - 1).max(1);
            break;
        }
    }
    let left_weight: f64 = items[..split].iter().map(|(_, w)| w).sum();
    let frac = left_weight / total;
    let (r1, r2) = if horizontal {
        let w1 =
            ((rect.w as f64 * frac).round() as usize).clamp(1, rect.w.saturating_sub(1).max(1));
        (
            Rect { w: w1, ..rect },
            Rect {
                x: rect.x + w1,
                w: rect.w - w1,
                ..rect
            },
        )
    } else {
        let h1 =
            ((rect.h as f64 * frac).round() as usize).clamp(1, rect.h.saturating_sub(1).max(1));
        (
            Rect { h: h1, ..rect },
            Rect {
                y: rect.y + h1,
                h: rect.h - h1,
                ..rect
            },
        )
    };
    layout(&items[..split], r1, !horizontal, grid);
    layout(&items[split..], r2, !horizontal, grid);
}

fn fill(rect: Rect, glyph: char, grid: &mut [Vec<char>]) {
    for y in rect.y..rect.y + rect.h {
        for x in rect.x..rect.x + rect.w {
            if y < grid.len() && x < grid[y].len() {
                grid[y][x] = glyph;
            }
        }
    }
}

fn paint_labels(
    items: &[(usize, f64)],
    labels: &[String],
    width: usize,
    height: usize,
    grid: &mut [Vec<char>],
) {
    // Re-run the layout to know each box, then stamp the label in the
    // top-left corner of boxes wide enough to hold ≥ 4 characters.
    let mut rects: Vec<(usize, Rect)> = Vec::new();
    collect_rects(
        items,
        Rect {
            x: 0,
            y: 0,
            w: width,
            h: height,
        },
        true,
        &mut rects,
    );
    for (idx, rect) in rects {
        let Some(label) = labels.get(idx) else {
            continue;
        };
        if rect.w < 5 || rect.h < 1 {
            continue;
        }
        let text = truncate_label(label, rect.w - 1);
        for (dx, ch) in text.chars().enumerate() {
            grid[rect.y][rect.x + dx] = ch;
        }
    }
}

fn collect_rects(
    items: &[(usize, f64)],
    rect: Rect,
    horizontal: bool,
    out: &mut Vec<(usize, Rect)>,
) {
    if items.is_empty() || rect.w == 0 || rect.h == 0 {
        return;
    }
    if items.len() == 1 {
        out.push((items[0].0, rect));
        return;
    }
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    let mut split = 1;
    for (k, (_, w)) in items.iter().enumerate() {
        acc += w;
        if acc >= total / 2.0 {
            split = (k + 1).min(items.len() - 1).max(1);
            break;
        }
    }
    let left_weight: f64 = items[..split].iter().map(|(_, w)| w).sum();
    let frac = left_weight / total;
    let (r1, r2) = if horizontal {
        let w1 =
            ((rect.w as f64 * frac).round() as usize).clamp(1, rect.w.saturating_sub(1).max(1));
        (
            Rect { w: w1, ..rect },
            Rect {
                x: rect.x + w1,
                w: rect.w - w1,
                ..rect
            },
        )
    } else {
        let h1 =
            ((rect.h as f64 * frac).round() as usize).clamp(1, rect.h.saturating_sub(1).max(1));
        (
            Rect { h: h1, ..rect },
            Rect {
                y: rect.y + h1,
                h: rect.h - h1,
                ..rect
            },
        )
    };
    collect_rects(&items[..split], r1, !horizontal, out);
    collect_rects(&items[split..], r2, !horizontal, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("seg{i}")).collect()
    }

    #[test]
    fn grid_dimensions() {
        let t = treemap(&labels(3), &[1.0, 1.0, 2.0], 40, 10);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
    }

    #[test]
    fn all_segments_present() {
        let t = treemap(&labels(4), &[1.0, 1.0, 1.0, 1.0], 40, 12);
        for i in 0..4 {
            assert!(t.contains(slice_glyph(i)), "segment {i} missing:\n{t}");
        }
    }

    #[test]
    fn area_tracks_weight() {
        let t = treemap(&labels(2), &[3.0, 1.0], 40, 12);
        let a = t.chars().filter(|&c| c == slice_glyph(0)).count();
        let b = t.chars().filter(|&c| c == slice_glyph(1)).count();
        let frac = a as f64 / (a + b) as f64;
        assert!((0.6..0.9).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn labels_painted_in_boxes() {
        let t = treemap(&labels(2), &[1.0, 1.0], 40, 8);
        assert!(t.contains("seg0"));
        assert!(t.contains("seg1"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(treemap(&[], &[], 10, 2).lines().count(), 2);
        let zero = treemap(&labels(2), &[0.0, 0.0], 10, 2);
        assert!(zero.chars().all(|c| c == ' ' || c == '\n'));
        assert_eq!(treemap(&labels(1), &[1.0], 0, 0), "");
    }
}
