//! Typed lint diagnostics, mirroring `charles_sdl::analyze`'s design:
//! stable snake_case codes, machine-readable output, human detail.

use std::fmt;

/// Every diagnostic code the engine can emit, in one place.
///
/// Codes are stable API: CI artefacts, suppression comments and
/// `docs/LINTS.md` all key on them. Add, never rename.
pub mod codes {
    /// Direct panicking call (`.unwrap()` / `.expect(` / `panic!` /
    /// `unreachable!` / `todo!` / `unimplemented!`) in a protected file.
    pub const PANIC: &str = "panic";
    /// Panicking call transitively reachable from a request-path entry
    /// fn through the conservative intra-crate call graph.
    pub const PANIC_REACHABLE: &str = "panic_reachable";
    /// Ambient clock read (`Instant::now` / `SystemTime::now`) in the
    /// deterministic core.
    pub const CLOCK: &str = "clock";
    /// `#[cfg(feature = "parallel")]` item without a
    /// `#[cfg(not(feature = "parallel"))]` sibling in the same file.
    pub const FEATURE_ASYMMETRY: &str = "feature_asymmetry";
    /// `unsafe` in a module outside the committed allowlist.
    pub const UNSAFE_MODULE: &str = "unsafe_module";
    /// `unsafe` block/fn/impl without an adjacent `// SAFETY:` comment.
    pub const UNSAFE_UNDOCUMENTED: &str = "unsafe_undocumented";
    /// Mutex guard binding live across a blocking I/O call in the same
    /// block scope.
    pub const LOCK_IO: &str = "lock_io";
    /// Source constant/code disagrees with `docs/lint/registry.txt`.
    pub const SPEC_DRIFT: &str = "spec_drift";
    /// README table missing a registry entry.
    pub const README_DRIFT: &str = "readme_drift";
    /// Public API surface differs from the committed snapshot in
    /// `docs/api/<crate>.txt`.
    pub const API_SNAPSHOT: &str = "api_snapshot";
    /// `lint:allow` comment without the mandatory reason text.
    pub const ALLOW_UNREASONED: &str = "allow_unreasoned";
    /// `lint:allow` comment naming a code this engine does not emit.
    pub const ALLOW_UNKNOWN: &str = "allow_unknown";

    /// All codes, for validation of `lint:allow(<code>)` comments.
    pub const ALL: &[&str] = &[
        PANIC,
        PANIC_REACHABLE,
        CLOCK,
        FEATURE_ASYMMETRY,
        UNSAFE_MODULE,
        UNSAFE_UNDOCUMENTED,
        LOCK_IO,
        SPEC_DRIFT,
        README_DRIFT,
        API_SNAPSHOT,
        ALLOW_UNREASONED,
        ALLOW_UNKNOWN,
    ];
}

/// One finding: where, what rule, and the human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable snake_case code from [`codes`].
    pub code: &'static str,
    /// Repo-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: u32,
    /// Human-readable explanation, including how to fix or suppress.
    pub detail: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(
        code: &'static str,
        file: impl Into<String>,
        line: u32,
        detail: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            file: file.into(),
            line,
            detail: detail.into(),
        }
    }

    /// This diagnostic as one JSON object (hand-rolled — the crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"file\":{},\"line\":{},\"detail\":{}}}",
            json_string(self.code),
            json_string(&self.file),
            self.line,
            json_string(&self.detail)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.code, self.detail)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.code, self.detail
            )
        }
    }
}

/// A full diagnostics list as a JSON array (one line; CI artefact).
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Minimal JSON string encoder (escapes quotes, backslashes, control
/// characters) — same dialect the serve crate hand-rolls.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(codes::PANIC, "a/b.rs", 7, "call \"x\"\nhere");
        assert_eq!(
            d.to_json(),
            "{\"code\":\"panic\",\"file\":\"a/b.rs\",\"line\":7,\"detail\":\"call \\\"x\\\"\\nhere\"}"
        );
        assert_eq!(to_json_array(&[]), "[]");
        assert!(to_json_array(&[d.clone(), d]).starts_with("[{"));
    }

    #[test]
    fn display_omits_line_zero() {
        let d = Diagnostic::new(codes::API_SNAPSHOT, "docs/api/x.txt", 0, "missing");
        assert_eq!(d.to_string(), "docs/api/x.txt: [api_snapshot] missing");
    }
}
