//! A token-level Rust lexer for the lint engine.
//!
//! This is deliberately **not** a full Rust parser: the lint passes need
//! to know *what kind of text they are looking at* — code vs. string
//! literal vs. comment — and to match small token patterns
//! (`.unwrap` `(` `)`, `Instant` `::` `now`, `unsafe` `{`). A real
//! lexer is what separates a trustworthy lint from the substring scanner
//! it replaces: `".unwrap()"` inside a string literal, a doc comment, or
//! a raw string is one `Str`/`Comment` token here, so it can never be
//! mistaken for a call again. See `docs/adr/0002-token-level-lint.md`
//! for why the engine stops at tokens + a lightweight item model.
//!
//! Coverage: line and (nested) block comments, string literals with
//! escapes, raw strings `r"…"` / `r#"…"#` (any number of hashes), byte
//! and raw-byte strings, char and byte-char literals, lifetimes
//! (disambiguated from char literals), raw identifiers `r#ident`,
//! numbers (decimal/hex/octal/binary, `_` separators, float forms,
//! suffixes), identifiers, and single-character punctuation. Multi-char
//! operators are left as adjacent punct tokens; pattern matchers simply
//! match the sequence (`:` `:` for `::`).

/// What a token is, which is all the passes need to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading `'` included).
    Lifetime,
    /// Any numeric literal, suffix included.
    Number,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"` — quotes and
    /// prefixes included in `text`.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character.
    Punct,
    /// A line or block comment, markers included. Doc comments are
    /// comments here; the item model inspects the text when it cares.
    Comment,
}

/// One token with its 1-based source line (the line it *starts* on).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this is an `Ident` with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is a `Punct` with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// The value of a `Str` token with prefixes/quotes/hashes stripped
    /// and common escapes (`\"`, `\\`, `\n`, `\t`, `\r`, `\0`, `\'`)
    /// decoded. Unrecognized escapes are kept verbatim — good enough
    /// for the snake_case registry strings the passes compare.
    pub fn str_value(&self) -> String {
        debug_assert_eq!(self.kind, TokKind::Str);
        let t = self.text.as_str();
        let t = t.strip_prefix('b').unwrap_or(t);
        if let Some(raw) = t.strip_prefix('r') {
            let hashes = raw.chars().take_while(|&c| c == '#').count();
            let inner = &raw[hashes..];
            let inner = inner.strip_prefix('"').unwrap_or(inner);
            let inner = &inner[..inner.len().saturating_sub(1 + hashes)];
            return inner.to_string();
        }
        let inner = t.strip_prefix('"').unwrap_or(t);
        let inner = inner.strip_suffix('"').unwrap_or(inner);
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(e @ ('"' | '\\' | '\'')) => out.push(e),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens, comments included, whitespace dropped.
///
/// The lexer never fails: unterminated literals are closed by end of
/// file (the lint runs on code `rustc` already accepted, so this only
/// matters for hostile fixture inputs, where "rest of file is one
/// token" is a safe answer).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        chars: src.char_indices().peekable(),
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while let Some(&(i, c)) = self.chars.peek() {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' => self.slash(i),
                '"' => self.string(i),
                '\'' => self.quote(i),
                _ if c.is_ascii_digit() => self.number(i),
                _ if is_ident_start(c) => self.ident_or_prefixed(i),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, i, i + c.len_utf8(), line);
                }
            }
        }
        self.toks
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Byte offset of the next unconsumed char (or end of input).
    fn pos(&mut self) -> usize {
        self.chars.peek().map_or(self.src.len(), |&(i, _)| i)
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.toks.push(Tok {
            kind,
            text: self.src[start..end].to_string(),
            line,
        });
    }

    /// `/` — comment or plain punct.
    fn slash(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // the '/'
        match self.peek() {
            Some('/') => {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                let end = self.pos();
                self.push(TokKind::Comment, start, end, line);
            }
            Some('*') => {
                self.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match self.bump() {
                        Some('*') if self.peek() == Some('/') => {
                            self.bump();
                            depth -= 1;
                        }
                        Some('/') if self.peek() == Some('*') => {
                            self.bump();
                            depth += 1;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                let end = self.pos();
                self.push(TokKind::Comment, start, end, line);
            }
            _ => self.push(TokKind::Punct, start, start + 1, line),
        }
    }

    /// A `"…"` string starting at `start` (the opening quote is the next
    /// unconsumed char).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let end = self.pos();
        self.push(TokKind::Str, start, end, line);
    }

    /// A raw string `r"…"` / `r#"…"#`: the caller consumed the prefix;
    /// the next chars are `#… "`.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                let mut seen = 0;
                while seen < hashes {
                    if self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    } else {
                        continue 'outer;
                    }
                }
                break;
            }
        }
        let end = self.pos();
        self.push(TokKind::Str, start, end, line);
    }

    /// `'` — char literal or lifetime.
    fn quote(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // the '
        match self.peek() {
            // `'\…'` is always a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char
                             // consume to closing quote (handles \u{…})
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                let end = self.pos();
                self.push(TokKind::Char, start, end, line);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` char vs `'a` lifetime: lex the ident, then check
                // for a closing quote.
                while let Some(c2) = self.peek() {
                    if !is_ident_continue(c2) {
                        break;
                    }
                    self.bump();
                }
                if self.peek() == Some('\'') {
                    self.bump();
                    let end = self.pos();
                    self.push(TokKind::Char, start, end, line);
                } else {
                    let end = self.pos();
                    self.push(TokKind::Lifetime, start, end, line);
                }
            }
            // `'('`, `'9'`, `' '` … — a one-char literal.
            Some(_) => {
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                let end = self.pos();
                self.push(TokKind::Char, start, end, line);
            }
            None => {
                let end = self.pos();
                self.push(TokKind::Punct, start, end, line)
            }
        }
    }

    fn number(&mut self, start: usize) {
        let line = self.line;
        // Integer/float body: alphanumerics and `_` (covers 0x/0b/0o,
        // suffixes, exponents), plus `.` only when followed by a digit
        // (so `0..10` and `1.max(2)` do not swallow the dot).
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                let here = self.pos();
                let was_exp = matches!(c, 'e' | 'E') && !self.src[start..here].starts_with("0x");
                self.bump();
                // `1e-3` / `1E+7`: sign directly after the exponent.
                if was_exp {
                    if let Some(s @ ('+' | '-')) = self.peek() {
                        let _ = s;
                        self.bump();
                    }
                }
            } else if c == '.' {
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&(_, d)) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let end = self.pos();
        self.push(TokKind::Number, start, end, line);
    }

    /// Identifier — or a string/char prefix (`r"…"`, `b'…'`, `br#"…"#`,
    /// `r#ident`).
    fn ident_or_prefixed(&mut self, start: usize) {
        let line = self.line;
        while let Some(c) = self.peek() {
            if !is_ident_continue(c) {
                break;
            }
            self.bump();
        }
        let here = self.pos();
        let ident = &self.src[start..here];
        match (ident, self.peek()) {
            ("r" | "br" | "rb" | "cr", Some('"')) => self.raw_string(start),
            ("r" | "br" | "rb" | "cr", Some('#')) => {
                // `r#"…"#` raw string or `r#ident` raw identifier.
                let mut ahead = self.chars.clone();
                ahead.next(); // the '#'
                let is_raw_ident =
                    ident == "r" && matches!(ahead.peek(), Some(&(_, c)) if is_ident_start(c));
                if is_raw_ident {
                    self.bump(); // '#'
                    while let Some(c) = self.peek() {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.bump();
                    }
                    let end = self.pos();
                    self.push(TokKind::Ident, start, end, line);
                } else {
                    self.raw_string(start);
                }
            }
            ("b" | "c", Some('"')) => self.string(start),
            ("b", Some('\'')) => self.quote(start),
            _ => {
                let end = self.pos();
                self.push(TokKind::Ident, start, end, line)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_comments_and_code_are_distinct_tokens() {
        let toks = kinds(r#"let s = "x.unwrap()"; // .expect( in a comment"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Comment && t.contains("expect")));
        // No Ident token named unwrap/expect leaked out.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unwrap" || t == "expect")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" .unwrap()"#; x()"###);
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert!(s.1.contains("quoted"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn str_value_strips_and_unescapes() {
        let toks = lex(r#"("no_such_session", "a\"b\\c")"#);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.str_value())
            .collect();
        assert_eq!(strs, ["no_such_session", "a\"b\\c"]);
        let raw = lex(r##"r#"x"y"#"##);
        assert_eq!(raw[0].str_value(), "x\"y");
        let byte = lex(r#"b"CHRW""#);
        assert_eq!(byte[0].str_value(), "CHRW");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still-comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokKind::Comment);
        assert!(toks[1].1.contains("still-comment"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let toks = kinds("0..10 1.5 1_000u64 0xEE 1e-3 2.max(3)");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            ["0", "10", "1.5", "1_000u64", "0xEE", "1e-3", "2", "3"]
        );
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"s\ntr\"\nc";
        let toks = lex(src);
        let lines: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines[0], ("a".into(), 1));
        assert_eq!(lines[1].1, 2); // comment starts line 2
        assert_eq!(lines[2], ("b".into(), 4));
        assert_eq!(lines[3].1, 4); // string starts line 4
        assert_eq!(lines[4], ("c".into(), 6));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }
}
