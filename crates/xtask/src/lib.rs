//! charles-lint: the workspace's own static analysis engine.
//!
//! `cargo xtask lint` runs a multi-pass, token-level analysis over
//! every crate in the tree. It is dependency-free by design (this
//! workspace vendors its few deps; the lint must never be a reason to
//! add one) and deliberately *not* a Rust parser: a hand-rolled lexer
//! ([`lexer`]) plus a lightweight item model ([`model`]) answer every
//! question the passes ask, with well-documented over-approximations
//! instead of grammar chasing (see `docs/adr/0002-token-level-lint.md`).
//!
//! The passes ([`passes`]):
//!
//! | code | guarantee |
//! |------|-----------|
//! | `panic` | no panicking calls in protected request/selection files |
//! | `panic_reachable` | no panics reachable from serve's entry fns |
//! | `clock` | no ambient clock reads in the deterministic core |
//! | `feature_asymmetry` | every `parallel` gate has a `not(...)` twin |
//! | `unsafe_module` / `unsafe_undocumented` | unsafe is allowlisted and argued |
//! | `lock_io` | no mutex guard held across blocking I/O in serve |
//! | `spec_drift` / `readme_drift` | wire consts + error codes match `docs/lint/registry.txt` and the README |
//! | `api_snapshot` | `pub` surface matches `docs/api/<crate>.txt` |
//!
//! Suppression is per-line and must be justified:
//! `// lint:allow(<code>) <reason>`. An empty reason is itself a
//! diagnostic (`allow_unreasoned`), as is a code the engine does not
//! know (`allow_unknown`). Suppressions are applied centrally here, not
//! in the passes, so every pass stays a pure `workspace -> findings`
//! function.

pub mod diag;
pub mod lexer;
pub mod model;
pub mod passes;

use diag::{codes, Diagnostic};
use model::WorkspaceFiles;
use std::path::{Path, PathBuf};

/// The workspace root, from this crate's own manifest location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

/// Load the workspace under `root` and run every pass, returning the
/// post-suppression diagnostics sorted by (file, line, code).
pub fn run_lint(root: &Path) -> Vec<Diagnostic> {
    let ws = WorkspaceFiles::load(root);
    run_lint_on(&ws)
}

/// Run every pass over an already-loaded workspace model.
pub fn run_lint_on(ws: &WorkspaceFiles) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    passes::panics::check_direct(ws, &mut raw);
    passes::panics::check_reachable(ws, &mut raw);
    passes::clocks::check(ws, &mut raw);
    passes::features::check(ws, &mut raw);
    passes::unsafe_audit::check(ws, &mut raw);
    passes::locks::check(ws, &mut raw);
    passes::spec::check(ws, &mut raw);
    passes::api::check(ws, &mut raw);
    apply_suppressions(ws, raw)
}

/// Central suppression filter + suppression audit.
///
/// A diagnostic is dropped when its line carries a
/// `// lint:allow(<its code>) <reason>` comment with non-empty reason.
/// Every suppression comment in the tree is audited regardless of
/// whether it matched: unknown codes and missing reasons are findings.
fn apply_suppressions(ws: &WorkspaceFiles, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let suppressed = ws
                .file(&d.file)
                .and_then(|f| f.suppression_for(d.line, d.code))
                .is_some_and(|s| !s.reason.is_empty());
            !suppressed
        })
        .collect();
    for file in &ws.files {
        for s in &file.suppressions {
            if !codes::ALL.contains(&s.code.as_str()) {
                out.push(Diagnostic::new(
                    codes::ALLOW_UNKNOWN,
                    file.path.clone(),
                    s.line,
                    format!(
                        "`lint:allow({})` names a code this lint does not emit — see \
                         docs/LINTS.md for the list",
                        s.code
                    ),
                ));
            } else if s.reason.is_empty() {
                out.push(Diagnostic::new(
                    codes::ALLOW_UNREASONED,
                    file.path.clone(),
                    s.line,
                    format!(
                        "`lint:allow({})` without a reason — suppressions must say *why* \
                         the finding is acceptable: `// lint:allow({}) <reason>`",
                        s.code, s.code
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code, a.detail.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.code,
            b.detail.as_str(),
        ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workspace_root_is_a_workspace() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn reasoned_suppressions_drop_the_diagnostic_and_nothing_else() {
        let ws = WorkspaceFiles {
            root: PathBuf::new(),
            files: vec![model::SourceFile::parse(
                "a.rs",
                "fn f() {\n    x(); // lint:allow(lock_io) guard is request-local\n}\n",
            )],
        };
        let raw = vec![
            Diagnostic::new(codes::LOCK_IO, "a.rs", 2, "blocking"),
            Diagnostic::new(codes::LOCK_IO, "a.rs", 3, "other line"),
        ];
        let out = apply_suppressions(&ws, raw);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn unreasoned_and_unknown_allows_are_findings() {
        let ws = WorkspaceFiles {
            root: PathBuf::new(),
            files: vec![model::SourceFile::parse(
                "a.rs",
                "fn f() {\n    x(); // lint:allow(panic)\n    y(); // lint:allow(bogus_code) because\n}\n",
            )],
        };
        let out = apply_suppressions(&ws, Vec::new());
        let codes_seen: Vec<&str> = out.iter().map(|d| d.code).collect();
        assert_eq!(codes_seen, [codes::ALLOW_UNREASONED, codes::ALLOW_UNKNOWN]);
    }

    #[test]
    fn unreasoned_allow_does_not_suppress() {
        let ws = WorkspaceFiles {
            root: PathBuf::new(),
            files: vec![model::SourceFile::parse(
                "a.rs",
                "fn f() {\n    x.unwrap(); // lint:allow(panic)\n}\n",
            )],
        };
        let raw = vec![Diagnostic::new(codes::PANIC, "a.rs", 2, "panicking call")];
        let out = apply_suppressions(&ws, raw);
        assert!(out.iter().any(|d| d.code == codes::PANIC));
        assert!(out.iter().any(|d| d.code == codes::ALLOW_UNREASONED));
    }
}
