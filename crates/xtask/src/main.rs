//! Workspace hygiene tasks, dependency-free by design (this crate must
//! build in environments where crates.io is unreachable).
//!
//! ```text
//! cargo run -p charles-xtask -- lint
//! ```
//!
//! `lint` enforces three source-level rules `rustc` and clippy do not:
//!
//! 1. **No panicking calls in server request paths or the store's
//!    untrusted-input/selection hot paths.** `.unwrap()` and
//!    `.expect(` are forbidden in the non-test portions of
//!    `crates/serve/src/server.rs`, `crates/serve/src/http.rs`,
//!    `crates/serve/src/wire.rs` (a panic there kills a pool worker
//!    mid-connection instead of answering 5xx or an error frame),
//!    `crates/store/src/bitmap/mod.rs`,
//!    `crates/store/src/bitmap/compressed.rs` (every selection the
//!    advisor evaluates flows through these; a panic takes the whole
//!    advise down) and `crates/store/src/disk/mmap.rs` (mapped bytes
//!    come from disk — corruption must surface as `StoreError`, never
//!    a panic). Lines may opt out with a trailing
//!    `// lint:allow(panic)` comment stating why.
//! 2. **No ambient clocks in the core.** `Instant::now`/`SystemTime::now`
//!    are forbidden in `crates/core/src/*.rs`: the advisor is a
//!    deterministic function of (backend, config, context), and clock
//!    reads are where nondeterminism sneaks in. Timing belongs to the
//!    bench/serve layers.
//! 3. **Feature-gate symmetry.** Any source file using
//!    `#[cfg(feature = "parallel")]` must also contain
//!    `#[cfg(not(feature = "parallel"))]` — a gated item without a
//!    sequential sibling breaks `--no-default-features` builds, which CI
//!    only catches for code paths its tests happen to exercise.
//!
//! Exit status is the number of violations (0 = clean), so CI can run
//! it as a plain step.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let violations = run_lint(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("unknown task {other:?}; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p charles-xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// One violation, already formatted for the terminal.
type Violation = String;

fn run_lint(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for rel in [
        "crates/serve/src/server.rs",
        "crates/serve/src/http.rs",
        "crates/serve/src/wire.rs",
        "crates/store/src/bitmap/mod.rs",
        "crates/store/src/bitmap/compressed.rs",
        "crates/store/src/disk/mmap.rs",
    ] {
        match fs::read_to_string(root.join(rel)) {
            Ok(src) => check_no_panics(rel, &src, &mut violations),
            Err(e) => violations.push(format!("{rel}: unreadable: {e}")),
        }
    }
    for (rel, src) in read_sources(&root.join("crates/core/src"), "crates/core/src") {
        check_no_clocks(&rel, &src, &mut violations);
    }
    for (rel, src) in read_sources(&root.join("crates"), "crates") {
        check_feature_symmetry(&rel, &src, &mut violations);
    }
    violations
}

/// All `.rs` files under `dir` (recursively), as `(repo-relative path,
/// contents)` pairs in sorted order.
fn read_sources(dir: &Path, rel: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            // `target/` never appears under crates/*/src, so no skip
            // list is needed here.
            out.extend(read_sources(&path, &rel_child));
        } else if name.ends_with(".rs") {
            if let Ok(src) = fs::read_to_string(&path) {
                out.push((rel_child, src));
            }
        }
    }
    out
}

/// The non-test prefix of a source file: everything before the first
/// `#[cfg(test)]` line (the repo convention keeps one trailing test
/// module per file).
fn non_test_prefix(src: &str) -> impl Iterator<Item = (usize, &str)> {
    src.lines()
        .enumerate()
        .take_while(|(_, line)| !line.trim_start().starts_with("#[cfg(test)]"))
}

/// Strip the commented tail of a line (naive: `//` outside quotes is
/// rare enough in this codebase that string-literal `//` is not worth
/// handling).
fn uncommented(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn check_no_panics(rel: &str, src: &str, violations: &mut Vec<Violation>) {
    for (idx, line) in non_test_prefix(src) {
        if line.contains("lint:allow(panic)") {
            continue;
        }
        let code = uncommented(line);
        // `.unwrap()` exactly — `unwrap_or_else`/`unwrap_or_default`
        // don't panic and stay legal.
        let panicking = code.contains(".unwrap()") || code.contains(".expect(");
        if panicking {
            violations.push(format!(
                "{rel}:{}: panicking call in a request path (answer an error response instead, \
                 or annotate the line with `// lint:allow(panic)` and a reason): {}",
                idx + 1,
                line.trim()
            ));
        }
    }
}

fn check_no_clocks(rel: &str, src: &str, violations: &mut Vec<Violation>) {
    for (idx, line) in non_test_prefix(src) {
        let code = uncommented(line);
        if code.contains("Instant::now") || code.contains("SystemTime::now") {
            violations.push(format!(
                "{rel}:{}: ambient clock read in the deterministic core \
                 (timing belongs to bench/serve): {}",
                idx + 1,
                line.trim()
            ));
        }
    }
}

fn check_feature_symmetry(rel: &str, src: &str, violations: &mut Vec<Violation>) {
    let gated = src.contains("#[cfg(feature = \"parallel\")]");
    let sibling = src.contains("#[cfg(not(feature = \"parallel\"))]");
    if gated && !sibling {
        violations.push(format!(
            "{rel}: has #[cfg(feature = \"parallel\")] items but no \
             #[cfg(not(feature = \"parallel\"))] sibling — \
             --no-default-features builds lose the item entirely"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workspace_is_clean() {
        // The lint's real assertion: running it over the repo finds
        // nothing. (CI runs the binary; this keeps `cargo test` enough
        // locally.)
        let violations = run_lint(&workspace_root());
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn panicking_calls_are_flagged_outside_tests() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { z.unwrap(); }\n}\n";
        let mut v = Vec::new();
        check_no_panics("f.rs", src, &mut v);
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v[0].contains("f.rs:2"));
        assert!(v[1].contains("f.rs:3"));
    }

    #[test]
    fn non_panicking_unwrap_variants_pass() {
        let src = "fn f() {\n    a.unwrap_or_else(|| 1);\n    b.unwrap_or_default();\n\
                   // c.unwrap() in a comment\n}\n";
        let mut v = Vec::new();
        check_no_panics("f.rs", src, &mut v);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn allow_comment_opts_a_line_out() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(panic) startup, before serving\n}\n";
        let mut v = Vec::new();
        check_no_panics("f.rs", src, &mut v);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn clock_reads_are_flagged() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let mut v = Vec::new();
        check_no_clocks("core.rs", src, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("core.rs:2"));
    }

    #[test]
    fn asymmetric_feature_gates_are_flagged() {
        let gated_only = "#[cfg(feature = \"parallel\")]\nfn par() {}\n";
        let mut v = Vec::new();
        check_feature_symmetry("a.rs", gated_only, &mut v);
        assert_eq!(v.len(), 1);
        let symmetric =
            "#[cfg(feature = \"parallel\")]\nfn par() {}\n#[cfg(not(feature = \"parallel\"))]\nfn seq() {}\n";
        let mut v = Vec::new();
        check_feature_symmetry("a.rs", symmetric, &mut v);
        assert!(v.is_empty());
    }
}
