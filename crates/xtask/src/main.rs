//! Thin CLI over the `charles_xtask` lint engine.
//!
//! ```text
//! cargo run -p charles-xtask -- lint                        # human output
//! cargo run -p charles-xtask -- lint --json                 # machine output (CI artefact)
//! cargo run -p charles-xtask -- lint --write-api-snapshots  # regenerate docs/api/*.txt
//! ```
//!
//! Exit status: 0 when clean, 1 when any diagnostic survives
//! suppression (or on bad usage). `--json` prints a single JSON array
//! of `{code, file, line, detail}` objects on stdout — empty array when
//! clean — so CI can both gate on the exit code and upload the output.
//! The rules themselves are documented in `docs/LINTS.md`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut json = false;
            let mut write_snapshots = false;
            for arg in args {
                match arg.as_str() {
                    "--json" => json = true,
                    "--write-api-snapshots" => write_snapshots = true,
                    other => {
                        eprintln!(
                            "unknown flag {other:?}; available: --json --write-api-snapshots"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            let root = charles_xtask::workspace_root();
            if write_snapshots {
                let ws = charles_xtask::model::WorkspaceFiles::load(&root);
                match charles_xtask::passes::api::write_snapshots(&ws) {
                    Ok(written) => {
                        for path in written {
                            eprintln!("wrote {path}");
                        }
                    }
                    Err(e) => {
                        eprintln!("failed to write API snapshots: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let diagnostics = charles_xtask::run_lint(&root);
            if json {
                println!("{}", charles_xtask::diag::to_json_array(&diagnostics));
            } else {
                for d in &diagnostics {
                    eprintln!("{d}");
                }
            }
            if diagnostics.is_empty() {
                if !json {
                    println!("xtask lint: clean");
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} diagnostic(s)", diagnostics.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("unknown task {other:?}; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p charles-xtask -- lint [--json] [--write-api-snapshots]");
            ExitCode::FAILURE
        }
    }
}
