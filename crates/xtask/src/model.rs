//! A lightweight item model on top of the lexer.
//!
//! The model answers the structural questions the passes ask — *which
//! fn does this token belong to*, *is this span `#[cfg(test)]`-scoped*,
//! *what `pub` items does this file declare*, *which lines carry a
//! `lint:allow` suppression* — without being a Rust parser. It
//! recognizes item heads (`fn`/`struct`/`enum`/`trait`/`impl`/`mod`/
//! `use`/`const`/`static`/`type`/`macro_rules!`/`extern`), matches the
//! brace span of every body, recurses into `mod`/`impl`/`trait`/extern
//! blocks, and treats fn bodies as opaque token ranges for the passes
//! to scan. Anything it does not recognize is skipped one token at a
//! time, so hostile fixtures cannot wedge it.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub`.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// The kinds of items the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`, free or associated.
    Fn,
    /// `struct` / `union`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `type` alias.
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `mod` (inline or file).
    Mod,
    /// `use` declaration (re-export when `pub`).
    Use,
    /// `impl` block.
    Impl,
    /// `macro_rules!` definition.
    MacroRules,
}

/// One item: enough identity to build call graphs and API snapshots.
#[derive(Debug, Clone)]
pub struct Item {
    /// What it is.
    pub kind: ItemKind,
    /// Its name (`use` items: the normalized path text; `impl` blocks:
    /// the self-type name).
    pub name: String,
    /// Enclosing inline-module path within the file.
    pub mod_path: Vec<String>,
    /// For associated fns: the `impl` self-type (or trait name for
    /// items inside `trait` blocks).
    pub owner: Option<String>,
    /// Written visibility.
    pub vis: Vis,
    /// 1-based line of the item head.
    pub line: u32,
    /// True when the item (or an ancestor) is `#[cfg(test)]`-gated or
    /// `#[test]`-attributed.
    pub is_test: bool,
    /// Token-index span `[open, close]` of the body braces, for items
    /// that have one.
    pub body: Option<(usize, usize)>,
}

/// A `// lint:allow(<code>) <reason>` suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment starts on (same line as the code it
    /// excuses — suppressions are trailing comments).
    pub line: u32,
    /// The diagnostic code in parentheses.
    pub code: String,
    /// The mandatory free-text justification after the closing paren.
    pub reason: String,
}

/// One lexed + modeled source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Flat item list (nested items included, each carrying its path).
    pub items: Vec<Item>,
    /// All `lint:allow` comments found.
    pub suppressions: Vec<Suppression>,
    /// Per-token: inside a test-scoped item.
    in_test: Vec<bool>,
    /// Per-line (1-based): the line carries a token that is neither a
    /// comment nor part of an attribute.
    line_has_code: Vec<bool>,
}

impl SourceFile {
    /// Lex + model `src` under repo-relative `path`.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let mut p = Parser {
            toks: &toks,
            items: Vec::new(),
            in_test: vec![false; toks.len()],
            attr_toks: vec![false; toks.len()],
        };
        p.items(0, toks.len(), &[], false, None);
        let Parser {
            items,
            in_test,
            attr_toks,
            ..
        } = p;
        let n_lines = toks
            .last()
            .map_or(0, |t| t.line as usize + src.matches('\n').count() + 1);
        let mut line_has_code = vec![false; n_lines + 2];
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Comment && !attr_toks[i] {
                if let Some(slot) = line_has_code.get_mut(t.line as usize) {
                    *slot = true;
                }
            }
        }
        // A suppression is a plain `//` line comment whose body *starts*
        // with the marker — doc comments or prose that merely mention
        // `lint:allow(...)` mid-sentence are not suppressions.
        let suppressions = toks
            .iter()
            .filter(|t| {
                t.kind == TokKind::Comment
                    && t.text.starts_with("//")
                    && !t.text.starts_with("///")
                    && !t.text.starts_with("//!")
            })
            .filter_map(|t| {
                let body = t.text.trim_start_matches('/').trim_start();
                let rest = body.strip_prefix("lint:allow(")?;
                let (code, reason) = rest.split_once(')')?;
                Some(Suppression {
                    line: t.line,
                    code: code.trim().to_string(),
                    reason: reason.trim().to_string(),
                })
            })
            .collect();
        SourceFile {
            path: path.to_string(),
            toks,
            items,
            suppressions,
            in_test,
            line_has_code,
        }
    }

    /// Is token `i` inside a `#[cfg(test)]` / `#[test]` scope?
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Does `line` carry real code (not just comments/attributes)?
    pub fn line_has_code(&self, line: u32) -> bool {
        self.line_has_code
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The suppression on `line` for `code`, if any.
    pub fn suppression_for(&self, line: u32, code: &str) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.line == line && s.code == code)
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    items: Vec<Item>,
    in_test: Vec<bool>,
    attr_toks: Vec<bool>,
}

impl<'a> Parser<'a> {
    /// Parse the items in token range `[i, end)`.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        mod_path: &[String],
        in_test: bool,
        owner: Option<&str>,
    ) {
        while i < end {
            i = self.item(i, end, mod_path, in_test, owner);
        }
    }

    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Next non-comment token index at or after `i` (capped at `end`).
    fn code_at(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.toks[i].kind == TokKind::Comment {
            i += 1;
        }
        i
    }

    /// Skip a bracketed span starting at the opener at `i`; returns the
    /// index just past the matching closer.
    fn skip_matched(&self, i: usize, end: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip to the `;` that ends a declaration, tracking every bracket
    /// kind so `const X: () = { … };` works. Returns index past `;`.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut paren = 0i64;
        let mut brace = 0i64;
        let mut bracket = 0i64;
        while i < end {
            let t = &self.toks[i];
            match t.text.as_str() {
                "(" if t.kind == TokKind::Punct => paren += 1,
                ")" if t.kind == TokKind::Punct => paren -= 1,
                "{" if t.kind == TokKind::Punct => brace += 1,
                "}" if t.kind == TokKind::Punct => brace -= 1,
                "[" if t.kind == TokKind::Punct => bracket += 1,
                "]" if t.kind == TokKind::Punct => bracket -= 1,
                ";" if t.kind == TokKind::Punct && paren == 0 && brace == 0 && bracket == 0 => {
                    return i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse one item starting at `i`; returns the index past it.
    #[allow(clippy::too_many_lines)]
    fn item(
        &mut self,
        start: usize,
        end: usize,
        mod_path: &[String],
        in_test: bool,
        owner: Option<&str>,
    ) -> usize {
        let mut i = self.code_at(start, end);
        if i >= end {
            return end;
        }
        let head_start = i;
        // Attributes: `#[…]` (outer) and `#![…]` (inner).
        let mut attr_test = false;
        while i < end && self.toks[i].is_punct('#') {
            let after = self.code_at(i + 1, end);
            let bracket_at = if self.tok(after).is_some_and(|t| t.is_punct('!')) {
                self.code_at(after + 1, end)
            } else {
                after
            };
            if !self.tok(bracket_at).is_some_and(|t| t.is_punct('[')) {
                // Stray `#` — not an attribute; treat as skippable.
                return i + 1;
            }
            let past = self.skip_matched(bracket_at, end, '[', ']');
            for j in i..past {
                self.attr_toks[j] = true;
            }
            // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — any
            // `test` ident inside the attribute marks the item.
            attr_test |= self.toks[i..past]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test");
            i = self.code_at(past, end);
        }
        if i >= end {
            return end;
        }
        // Visibility.
        let mut vis = Vis::Private;
        if self.toks[i].is_ident("pub") {
            vis = Vis::Pub;
            i = self.code_at(i + 1, end);
            if i < end && self.toks[i].is_punct('(') {
                vis = Vis::Restricted;
                i = self.code_at(self.skip_matched(i, end, '(', ')'), end);
            }
        }
        // Leading modifiers: `default`, `async`, `unsafe`, `extern "C"`,
        // and `const` only when it modifies `fn`.
        loop {
            if i >= end {
                return end;
            }
            let t = &self.toks[i];
            if t.is_ident("async") || t.is_ident("unsafe") || t.is_ident("default") {
                i = self.code_at(i + 1, end);
            } else if t.is_ident("const") {
                let next = self.code_at(i + 1, end);
                if self.tok(next).is_some_and(|t| t.is_ident("fn")) {
                    i = next;
                } else {
                    break;
                }
            } else if t.is_ident("extern") {
                let next = self.code_at(i + 1, end);
                if self.tok(next).is_some_and(|t| t.kind == TokKind::Str) {
                    let after = self.code_at(next + 1, end);
                    if self.tok(after).is_some_and(|t| t.is_punct('{')) {
                        // `extern "C" { … }` foreign block: recurse.
                        let close = self.skip_matched(after, end, '{', '}');
                        self.mark_test(head_start, close, in_test || attr_test);
                        self.items(after + 1, close - 1, mod_path, in_test || attr_test, owner);
                        return close;
                    }
                    i = after; // `extern "C" fn`
                } else {
                    // `extern crate name;`
                    return self.finish_simple(
                        head_start,
                        i,
                        end,
                        Item {
                            kind: ItemKind::Use,
                            name: String::new(),
                            mod_path: mod_path.to_vec(),
                            owner: None,
                            vis,
                            line: self.toks[i].line,
                            is_test: in_test || attr_test,
                            body: None,
                        },
                    );
                }
            } else {
                break;
            }
        }
        let t = self.toks[i].clone();
        let is_test = in_test || attr_test;
        let line = t.line;
        let mk = |kind, name: String, body| Item {
            kind,
            name,
            mod_path: mod_path.to_vec(),
            owner: owner.map(str::to_string),
            vis,
            line,
            is_test,
            body,
        };
        match t.text.as_str() {
            "use" => {
                let past = self.skip_to_semi(i, end);
                let name = self.toks[i + 1..past.saturating_sub(1)]
                    .iter()
                    .filter(|t| t.kind != TokKind::Comment)
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join("");
                self.items.push(mk(ItemKind::Use, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            "mod" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                let after = self.code_at(name_at + 1, end);
                if self.tok(after).is_some_and(|t| t.is_punct('{')) {
                    let close = self.skip_matched(after, end, '{', '}');
                    self.items
                        .push(mk(ItemKind::Mod, name.clone(), Some((after, close - 1))));
                    self.mark_test(head_start, close, is_test);
                    let mut child_path = mod_path.to_vec();
                    child_path.push(name);
                    self.items(after + 1, close - 1, &child_path, is_test, None);
                    close
                } else {
                    let past = self.skip_to_semi(i, end);
                    self.items.push(mk(ItemKind::Mod, name, None));
                    self.mark_test(head_start, past, is_test);
                    past
                }
            }
            "fn" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                // Scan the signature for the body `{` (or `;` for a
                // declaration), tracking parens/brackets and ignoring
                // `->`'s `>`.
                let mut j = name_at + 1;
                let mut paren = 0i64;
                let mut bracket = 0i64;
                let mut body = None;
                while j < end {
                    let tk = &self.toks[j];
                    match tk.text.as_str() {
                        "(" if tk.kind == TokKind::Punct => paren += 1,
                        ")" if tk.kind == TokKind::Punct => paren -= 1,
                        "[" if tk.kind == TokKind::Punct => bracket += 1,
                        "]" if tk.kind == TokKind::Punct => bracket -= 1,
                        "{" if tk.kind == TokKind::Punct && paren == 0 && bracket == 0 => {
                            let close = self.skip_matched(j, end, '{', '}');
                            body = Some((j, close - 1));
                            j = close;
                            break;
                        }
                        ";" if tk.kind == TokKind::Punct && paren == 0 && bracket == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                self.items.push(mk(ItemKind::Fn, name, body));
                self.mark_test(head_start, j, is_test);
                j
            }
            "struct" | "union" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                // Unit/tuple structs end in `;`; field structs in `{…}`.
                let mut j = name_at + 1;
                let mut past = end;
                while j < end {
                    let tk = &self.toks[j];
                    if tk.is_punct('{') {
                        past = self.skip_matched(j, end, '{', '}');
                        break;
                    }
                    if tk.is_punct(';') {
                        past = j + 1;
                        break;
                    }
                    if tk.is_punct('(') {
                        j = self.skip_matched(j, end, '(', ')');
                        continue;
                    }
                    j += 1;
                }
                self.items.push(mk(ItemKind::Struct, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            "enum" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                let past = self.body_from(name_at + 1, end);
                self.items.push(mk(ItemKind::Enum, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            "trait" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                let (open, past) = self.brace_span_from(name_at + 1, end);
                self.items.push(mk(ItemKind::Trait, name.clone(), None));
                self.mark_test(head_start, past, is_test);
                if let Some(open) = open {
                    self.items(open + 1, past - 1, mod_path, is_test, Some(&name));
                }
                past
            }
            "impl" => {
                let (open, past) = self.brace_span_from(i + 1, end);
                let target = self.impl_target(i + 1, open.unwrap_or(past));
                self.items.push(mk(
                    ItemKind::Impl,
                    target.clone(),
                    open.map(|o| (o, past - 1)),
                ));
                self.mark_test(head_start, past, is_test);
                if let Some(open) = open {
                    self.items(open + 1, past - 1, mod_path, is_test, Some(&target));
                }
                past
            }
            "const" | "static" => {
                let kind = if t.text == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                let mut name_at = self.code_at(i + 1, end);
                if self.tok(name_at).is_some_and(|t| t.is_ident("mut")) {
                    name_at = self.code_at(name_at + 1, end);
                }
                let name = self.ident_text(name_at);
                let past = self.skip_to_semi(name_at, end);
                self.items.push(mk(kind, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            "type" => {
                let name_at = self.code_at(i + 1, end);
                let name = self.ident_text(name_at);
                let past = self.skip_to_semi(name_at, end);
                self.items.push(mk(ItemKind::TypeAlias, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            "macro_rules" => {
                // macro_rules ! name { … }
                let bang = self.code_at(i + 1, end);
                let name_at = self.code_at(bang + 1, end);
                let name = self.ident_text(name_at);
                let past = self.body_from(name_at + 1, end);
                self.items.push(mk(ItemKind::MacroRules, name, None));
                self.mark_test(head_start, past, is_test);
                past
            }
            _ => i + 1, // not an item head we model: skip one token
        }
    }

    /// `{…}` span search: returns index past the matching close brace,
    /// or past `end` when none found.
    fn body_from(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            if self.toks[i].is_punct('{') {
                return self.skip_matched(i, end, '{', '}');
            }
            i += 1;
        }
        end
    }

    /// Like [`Self::body_from`] but also reports the opening brace
    /// index, skipping parenthesized/bracketed stretches (so fn-pointer
    /// types in impl headers cannot fake a body).
    fn brace_span_from(&self, mut i: usize, end: usize) -> (Option<usize>, usize) {
        let mut paren = 0i64;
        let mut bracket = 0i64;
        while i < end {
            let t = &self.toks[i];
            match t.text.as_str() {
                "(" if t.kind == TokKind::Punct => paren += 1,
                ")" if t.kind == TokKind::Punct => paren -= 1,
                "[" if t.kind == TokKind::Punct => bracket += 1,
                "]" if t.kind == TokKind::Punct => bracket -= 1,
                "{" if t.kind == TokKind::Punct && paren == 0 && bracket == 0 => {
                    return (Some(i), self.skip_matched(i, end, '{', '}'));
                }
                ";" if t.kind == TokKind::Punct && paren == 0 && bracket == 0 => {
                    return (None, i + 1);
                }
                _ => {}
            }
            i += 1;
        }
        (None, end)
    }

    /// The self-type name of an `impl` header in `[i, open)`: the last
    /// path segment of the type after the trailing `for` (trait impls)
    /// or of the first type (inherent impls), generics stripped.
    fn impl_target(&self, i: usize, open: usize) -> String {
        let toks = &self.toks[i.min(open)..open];
        // Split on a top-level `for` (ignore `for<'a>` HRTBs: a `for`
        // directly followed by `<`).
        let mut split = None;
        let mut angle = 0i64;
        for (j, t) in toks.iter().enumerate() {
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => angle += 1,
                ">" if t.kind == TokKind::Punct => angle = (angle - 1).max(0),
                "for" if t.kind == TokKind::Ident && angle == 0 => {
                    let next_is_angle = toks.get(j + 1).is_some_and(|t| t.is_punct('<'));
                    if !next_is_angle {
                        split = Some(j + 1);
                    }
                }
                _ => {}
            }
        }
        let tail = &toks[split.unwrap_or(0)..];
        // Walk the leading path (`a :: b :: C`), return its last segment.
        let mut last = String::new();
        let mut j = 0;
        // Skip a leading generic parameter list `<…>` on inherent impls.
        if tail.first().is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i64;
            while j < tail.len() {
                if tail[j].is_punct('<') {
                    depth += 1;
                }
                if tail[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        while j < tail.len() {
            let t = &tail[j];
            if t.kind == TokKind::Ident {
                last = t.text.clone();
                j += 1;
            } else if t.is_punct(':')
                || t.is_punct('&')
                || t.kind == TokKind::Lifetime
                || t.is_ident("mut")
            {
                j += 1;
            } else {
                break;
            }
        }
        last
    }

    fn ident_text(&self, i: usize) -> String {
        self.tok(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default()
    }

    fn mark_test(&mut self, from: usize, to: usize, is_test: bool) {
        if is_test {
            for j in from..to.min(self.in_test.len()) {
                self.in_test[j] = true;
            }
        }
    }

    fn finish_simple(&mut self, head_start: usize, i: usize, end: usize, item: Item) -> usize {
        let past = self.skip_to_semi(i, end);
        self.mark_test(head_start, past, item.is_test);
        self.items.push(item);
        past
    }
}

/// The whole workspace's modeled sources.
#[derive(Debug)]
pub struct WorkspaceFiles {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Every `.rs` file under `crates/` and `src/`, sorted by path.
    pub files: Vec<SourceFile>,
}

impl WorkspaceFiles {
    /// Read and model every `.rs` file under `<root>/crates` and
    /// `<root>/src` (the facade). `vendor/`, `target/`, `examples/` and
    /// the repo-root `tests/` are out of scope: they are not shipped
    /// library/server surface.
    pub fn load(root: &Path) -> WorkspaceFiles {
        let mut files = Vec::new();
        for top in ["crates", "src"] {
            collect(&root.join(top), top, &mut files);
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        WorkspaceFiles {
            root: root.to_path_buf(),
            files,
        }
    }

    /// The files directly under one crate's `src/` tree.
    pub fn crate_src<'a>(&'a self, prefix: &str) -> impl Iterator<Item = &'a SourceFile> {
        let prefix = format!("{prefix}/");
        self.files
            .iter()
            .filter(move |f| f.path.starts_with(&prefix))
    }

    /// Look a file up by exact repo-relative path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn collect(dir: &Path, rel: &str, out: &mut Vec<SourceFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            // Test/bench/example trees are not shipped surface — and the
            // lint's own fixture corpus lives under `tests/fixtures/`.
            if matches!(
                name.as_str(),
                "target" | "vendor" | "tests" | "examples" | "benches"
            ) {
                continue;
            }
            collect(&path, &rel_child, out);
        } else if name.ends_with(".rs") {
            if let Ok(src) = std::fs::read_to_string(&path) {
                out.push(SourceFile::parse(&rel_child, &src));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_bodies_and_names_are_modeled() {
        let f = SourceFile::parse(
            "x.rs",
            "pub fn alpha(a: u32) -> u32 { a + 1 }\nfn beta() { alpha(2); }\n",
        );
        let fns: Vec<_> = f.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "alpha");
        assert_eq!(fns[0].vis, Vis::Pub);
        assert!(fns[0].body.is_some());
        assert_eq!(fns[1].name, "beta");
        assert_eq!(fns[1].vis, Vis::Private);
    }

    #[test]
    fn cfg_test_mod_scopes_every_token_inside() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("token present");
        assert!(f.is_test_tok(unwrap_at));
        let live_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("present");
        assert!(!f.is_test_tok(live_at));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let f = SourceFile::parse("x.rs", "#[test]\nfn t() { a.unwrap(); }\nfn live() {}\n");
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("present");
        assert!(f.is_test_tok(unwrap_at));
        let live = f.items.iter().find(|i| i.name == "live").expect("present");
        assert!(!live.is_test);
    }

    #[test]
    fn impl_methods_carry_their_owner() {
        let f = SourceFile::parse(
            "x.rs",
            "struct S;\nimpl S { pub fn m(&self) {} }\nimpl std::fmt::Debug for S { fn fmt(&self) {} }\n",
        );
        let m = f.items.iter().find(|i| i.name == "m").expect("present");
        assert_eq!(m.owner.as_deref(), Some("S"));
        assert_eq!(m.vis, Vis::Pub);
        let fmt = f.items.iter().find(|i| i.name == "fmt").expect("present");
        assert_eq!(fmt.owner.as_deref(), Some("S"));
    }

    #[test]
    fn generic_trait_impls_resolve_their_self_type() {
        let f = SourceFile::parse(
            "x.rs",
            "impl<T: Clone> Backend for ShardedTable<T> where T: Send { fn run(&self) {} }\n",
        );
        let imp = f
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("present");
        assert_eq!(imp.name, "ShardedTable");
    }

    #[test]
    fn inline_mods_extend_the_path() {
        let f = SourceFile::parse("x.rs", "mod outer { pub mod inner { pub fn f() {} } }\n");
        let func = f
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Fn)
            .expect("present");
        assert_eq!(func.mod_path, ["outer", "inner"]);
    }

    #[test]
    fn suppressions_parse_code_and_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    x.unwrap(); // lint:allow(panic) startup only, before serving\n    y.unwrap(); // lint:allow(panic)\n}\n",
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].line, 2);
        assert_eq!(f.suppressions[0].code, "panic");
        assert_eq!(f.suppressions[0].reason, "startup only, before serving");
        assert_eq!(f.suppressions[1].reason, "");
    }

    #[test]
    fn extern_blocks_expose_their_fn_declarations() {
        let f = SourceFile::parse(
            "x.rs",
            "mod sys { extern \"C\" { pub fn mmap(a: usize) -> i32; } }\n",
        );
        let m = f.items.iter().find(|i| i.name == "mmap").expect("present");
        assert_eq!(m.kind, ItemKind::Fn);
        assert!(m.body.is_none());
        assert_eq!(m.mod_path, ["sys"]);
    }

    #[test]
    fn const_with_brace_initializer_terminates() {
        let f = SourceFile::parse(
            "x.rs",
            "const X: [u8; 2] = [1, 2];\nstatic Y: u8 = { 3 };\nfn after() {}\n",
        );
        assert!(f.items.iter().any(|i| i.name == "after"));
        assert!(f
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Const && i.name == "X"));
        assert!(f
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Static && i.name == "Y"));
    }

    #[test]
    fn line_has_code_ignores_comments_and_attrs() {
        let f = SourceFile::parse(
            "x.rs",
            "// just a comment\n#[allow(dead_code)]\nfn f() {}\n",
        );
        assert!(!f.line_has_code(1));
        assert!(!f.line_has_code(2));
        assert!(f.line_has_code(3));
    }
}
