//! Public-API snapshot (`api_snapshot`).
//!
//! Every crate's `pub` surface — fns, types, consts, re-exports, fully
//! qualified by module path and `impl` owner — is rendered to a
//! normalized, sorted listing and diffed against the committed snapshot
//! in `docs/api/<crate>.txt`. Adding, removing or renaming a `pub` item
//! without touching the snapshot fails the lint, which turns every API
//! change into an explicit, reviewable diff line. Regenerate with
//! `cargo xtask lint --write-api-snapshots`.
//!
//! Scope rules: `pub(crate)`/`pub(super)` items are not API; items in
//! test scopes are not API; `main.rs`/`bin/` files have no API.

use crate::diag::{codes, Diagnostic};
use crate::model::{Item, ItemKind, Vis, WorkspaceFiles};
use std::collections::BTreeMap;

/// Repo-relative directory the snapshots live in.
pub const SNAPSHOT_DIR: &str = "docs/api";

/// The crates whose API is snapshotted: (snapshot name, src prefix).
pub const CRATES: &[(&str, &str)] = &[
    ("charles", "src"),
    ("charles-bench", "crates/bench/src"),
    ("charles-core", "crates/core/src"),
    ("charles-datagen", "crates/datagen/src"),
    ("charles-parallel", "crates/parallel/src"),
    ("charles-sdl", "crates/sdl/src"),
    ("charles-serve", "crates/serve/src"),
    ("charles-store", "crates/store/src"),
    ("charles-viz", "crates/viz/src"),
    ("charles-xtask", "crates/xtask/src"),
];

/// Render one crate's public surface as sorted snapshot lines.
pub fn snapshot(ws: &WorkspaceFiles, src_prefix: &str) -> String {
    let mut lines: Vec<String> = Vec::new();
    for file in ws.crate_src(src_prefix) {
        let rel = &file.path[src_prefix.len() + 1..];
        if rel == "main.rs" || rel.starts_with("bin/") {
            continue;
        }
        // File path → leading module path (lib.rs/mod.rs add nothing).
        let mut base: Vec<String> = rel
            .trim_end_matches(".rs")
            .split('/')
            .map(str::to_string)
            .collect();
        if matches!(base.last().map(String::as_str), Some("lib") | Some("mod")) {
            base.pop();
        }
        for item in &file.items {
            if item.vis != Vis::Pub || item.is_test {
                continue;
            }
            if let Some(line) = render(item, &base) {
                lines.push(line);
            }
        }
    }
    lines.sort();
    lines.dedup();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn render(item: &Item, base: &[String]) -> Option<String> {
    let kind = match item.kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Trait => "trait",
        ItemKind::TypeAlias => "type",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::Mod => "mod",
        ItemKind::Use => "use",
        // Impl blocks are not named API; their pub methods are listed
        // individually with the owner. Exported macros are rare enough
        // here to list like items.
        ItemKind::Impl => return None,
        ItemKind::MacroRules => "macro",
    };
    let mut path: Vec<&str> = base.iter().map(String::as_str).collect();
    path.extend(item.mod_path.iter().map(String::as_str));
    let mut qualified = path.join("::");
    if let Some(owner) = &item.owner {
        if !qualified.is_empty() {
            qualified.push_str("::");
        }
        qualified.push_str(owner);
    }
    if item.name.is_empty() {
        return None;
    }
    if !qualified.is_empty() {
        qualified.push_str("::");
    }
    // `use` names already carry their own path text.
    qualified.push_str(&item.name);
    Some(format!("pub {kind} {qualified}"))
}

/// Run the pass: compare each crate's live surface to its snapshot.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for (name, src_prefix) in CRATES {
        let live = snapshot(ws, src_prefix);
        let snap_rel = format!("{SNAPSHOT_DIR}/{name}.txt");
        let committed = std::fs::read_to_string(ws.root.join(&snap_rel)).unwrap_or_default();
        if committed.is_empty() && !live.is_empty() {
            out.push(Diagnostic::new(
                codes::API_SNAPSHOT,
                snap_rel,
                0,
                format!(
                    "no committed API snapshot for crate `{name}` — run \
                     `cargo xtask lint --write-api-snapshots` and commit the result"
                ),
            ));
            continue;
        }
        if committed == live {
            continue;
        }
        for line in diff_lines(&committed, &live) {
            out.push(Diagnostic::new(
                codes::API_SNAPSHOT,
                snap_rel.clone(),
                0,
                line,
            ));
        }
    }
}

/// Set-diff of snapshot lines (both sides are sorted and deduped, so a
/// line-set diff is the whole story).
fn diff_lines(committed: &str, live: &str) -> Vec<String> {
    let mut counts: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for l in committed.lines().filter(|l| !l.is_empty()) {
        counts.entry(l).or_default().0 = true;
    }
    for l in live.lines().filter(|l| !l.is_empty()) {
        counts.entry(l).or_default().1 = true;
    }
    counts
        .into_iter()
        .filter_map(|(line, (in_snap, in_live))| match (in_snap, in_live) {
            (true, false) => Some(format!(
                "`{line}` is in the committed snapshot but gone from the source — removing \
                 public API needs a snapshot update (and a changelog line)"
            )),
            (false, true) => Some(format!(
                "`{line}` is public in the source but absent from the committed snapshot — \
                 run `cargo xtask lint --write-api-snapshots` and commit the diff"
            )),
            _ => None,
        })
        .collect()
}

/// Regenerate every snapshot on disk. Returns the repo-relative paths
/// written.
pub fn write_snapshots(ws: &WorkspaceFiles) -> std::io::Result<Vec<String>> {
    let dir = ws.root.join(SNAPSHOT_DIR);
    std::fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for (name, src_prefix) in CRATES {
        let rel = format!("{SNAPSHOT_DIR}/{name}.txt");
        std::fs::write(dir.join(format!("{name}.txt")), snapshot(ws, src_prefix))?;
        written.push(rel);
    }
    Ok(written)
}
