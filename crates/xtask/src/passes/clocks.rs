//! No ambient clocks in the deterministic core (`clock`).
//!
//! The advisor is a pure function of (backend, config, context);
//! `Instant::now` / `SystemTime::now` in `crates/core` is where
//! nondeterminism sneaks in. Timing belongs to bench/serve. The lexer
//! keeps mentions in doc comments, strings and `#[cfg(test)]` modules
//! from tripping the ban.

use super::{at, code_indices};
use crate::diag::{codes, Diagnostic};
use crate::model::WorkspaceFiles;

/// The directory under the clock ban.
pub const CORE_SRC: &str = "crates/core/src";

/// Run the pass.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for file in ws.crate_src(CORE_SRC) {
        let c = code_indices(file);
        for i in 0..c.len() {
            if file.is_test_tok(c[i]) {
                continue;
            }
            let t = &file.toks[c[i]];
            if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
                continue;
            }
            let colon2 = at(file, &c, i + 1).is_some_and(|t| t.is_punct(':'))
                && at(file, &c, i + 2).is_some_and(|t| t.is_punct(':'));
            if colon2 && at(file, &c, i + 3).is_some_and(|t| t.is_ident("now")) {
                out.push(Diagnostic::new(
                    codes::CLOCK,
                    file.path.clone(),
                    t.line,
                    format!(
                        "ambient clock read `{}::now` in the deterministic core — timing \
                         belongs to the bench/serve layers",
                        t.text
                    ),
                ));
            }
        }
    }
}
