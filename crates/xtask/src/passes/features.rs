//! Feature-gate symmetry (`feature_asymmetry`).
//!
//! Any file with a `#[cfg(feature = "parallel")]` item must also carry
//! a `#[cfg(not(feature = "parallel"))]` sibling: a gated item without
//! a sequential twin breaks `--no-default-features` builds, which CI
//! only catches for code paths its tests happen to exercise. Rebased
//! onto the lexer so the attribute inside a string or doc example does
//! not count.

use super::{at, code_indices};
use crate::diag::{codes, Diagnostic};
use crate::lexer::TokKind;
use crate::model::WorkspaceFiles;

/// The feature whose gates must be symmetric.
const FEATURE: &str = "parallel";

/// Run the pass over every file under `crates/`.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for file in ws.crate_src("crates") {
        let c = code_indices(file);
        let mut gated_line = None;
        let mut has_sibling = false;
        for i in 0..c.len() {
            let t = &file.toks[c[i]];
            // `cfg ( … feature = "parallel" … )` — scan the cfg(...)
            // span; a `not` ident before the feature test negates it.
            if !t.is_ident("cfg") || !at(file, &c, i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let mut depth = 0i64;
            let mut negated = false;
            let mut j = i + 1;
            while let Some(tok) = at(file, &c, j) {
                if tok.is_punct('(') {
                    depth += 1;
                } else if tok.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tok.is_ident("not") {
                    negated = true;
                } else if tok.is_ident("feature")
                    && at(file, &c, j + 1).is_some_and(|t| t.is_punct('='))
                    && at(file, &c, j + 2)
                        .is_some_and(|t| t.kind == TokKind::Str && t.str_value() == FEATURE)
                {
                    if negated {
                        has_sibling = true;
                    } else {
                        gated_line.get_or_insert(t.line);
                    }
                }
                j += 1;
            }
        }
        if let Some(line) = gated_line {
            if !has_sibling {
                out.push(Diagnostic::new(
                    codes::FEATURE_ASYMMETRY,
                    file.path.clone(),
                    line,
                    format!(
                        "has `#[cfg(feature = \"{FEATURE}\")]` items but no \
                         `#[cfg(not(feature = \"{FEATURE}\"))]` sibling — \
                         --no-default-features builds lose the item entirely"
                    ),
                ));
            }
        }
    }
}
