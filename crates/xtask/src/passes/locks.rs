//! Lock-across-blocking-I/O (`lock_io`).
//!
//! In the serve crate, a `Mutex` guard bound with `let` must not still
//! be live when the same block performs a blocking socket/file call
//! (`read`/`write`/`write_all`/`flush`/`accept`/…): a worker parked in
//! a syscall while holding a shared lock stalls every other connection
//! that needs it for the full read deadline. The sessions registry,
//! dataset registry and connection table are all behind one mutex each —
//! exactly the locks this would serialize the server on.
//!
//! Scope and mechanics (see `docs/adr/0002-token-level-lint.md`): the
//! analysis is per-fn and block-scoped. A guard is a `let` binding
//! whose initializer contains `.lock()` and whose call chain ends in
//! one of `lock`/`unwrap`/`expect`/`unwrap_or_else`/`into_inner` (the
//! two idioms in this tree: `x.lock().unwrap_or_else(|p| p.into_inner())`
//! and plain `.lock()`). A binding like `….lock()….get(id).cloned()`
//! drops its guard at the end of the statement and is not tracked.
//! Guards die at the end of their block or at `drop(name)`. Blocking
//! calls reached *through another fn* are not seen — the reachability
//! ban and code review carry that residue.

use super::{at, code_indices_in};
use crate::diag::{codes, Diagnostic};
use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile, WorkspaceFiles};

/// The crate under the lock discipline.
const SERVE_SRC: &str = "crates/serve/src";

/// Method names treated as blocking I/O on a stream/listener.
const BLOCKING: &[&str] = &[
    "read",
    "write",
    "write_all",
    "write_vectored",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "fill_buf",
    "accept",
];

/// The call-chain tails that mean "this binding *is* the guard".
const GUARD_TAILS: &[&str] = &["lock", "unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Run the pass over every non-test fn body in the serve crate.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for file in ws.crate_src(SERVE_SRC) {
        check_file(file, out);
    }
}

pub(crate) fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for item in &file.items {
        if item.kind != ItemKind::Fn || item.is_test {
            continue;
        }
        let Some(body) = item.body else { continue };
        scan_body(file, &item.name, body, out);
    }
}

struct Guard {
    name: String,
    depth: i64,
    line: u32,
}

fn scan_body(file: &SourceFile, fn_name: &str, body: (usize, usize), out: &mut Vec<Diagnostic>) {
    let c = code_indices_in(file, body);
    let mut depth = 0i64;
    let mut guards: Vec<Guard> = Vec::new();
    // Guards whose `let` statement has not reached its `;` yet: the
    // initializer runs before the binding exists, so blocking calls
    // inside it are checked against the *previous* guard set only.
    let mut pending: Vec<(usize, Guard)> = Vec::new();
    let mut i = 0;
    while i < c.len() {
        pending.retain(|(activate_at, g)| {
            if i >= *activate_at {
                guards.push(Guard {
                    name: g.name.clone(),
                    depth: g.depth,
                    line: g.line,
                });
                false
            } else {
                true
            }
        });
        let t = &file.toks[c[i]];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            pending.retain(|(_, g)| g.depth <= depth);
        } else if t.is_ident("let") {
            if let Some((guard, end)) = guard_binding(file, &c, i, depth) {
                pending.push((end, guard));
            }
        } else if t.is_ident("drop") && at(file, &c, i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = at(file, &c, i + 2) {
                guards.retain(|g| g.name != name.text);
            }
        } else if t.is_punct('.') {
            let (Some(m), Some(p)) = (at(file, &c, i + 1), at(file, &c, i + 2)) else {
                i += 1;
                continue;
            };
            if m.kind == TokKind::Ident && BLOCKING.contains(&m.text.as_str()) && p.is_punct('(') {
                for g in &guards {
                    out.push(Diagnostic::new(
                        codes::LOCK_IO,
                        file.path.clone(),
                        m.line,
                        format!(
                            "blocking call `.{}(..)` in `{}` while mutex guard `{}` \
                             (bound at line {}) is still live — drop the guard (or scope \
                             it) before doing I/O, or suppress with \
                             `// lint:allow(lock_io) <reason>`",
                            m.text, fn_name, g.name, g.line
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

/// If the `let` at code index `i` binds a mutex guard, return the
/// guard plus the code index just past the statement's `;` (where the
/// binding comes alive). The main scan still walks the statement's own
/// tokens, so depth stays synced and blocking calls in the initializer
/// are checked against previously-live guards.
fn guard_binding(file: &SourceFile, c: &[usize], i: usize, depth: i64) -> Option<(Guard, usize)> {
    // let [mut] NAME = …;   (only simple ident patterns are tracked)
    let mut j = i + 1;
    if at(file, c, j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = at(file, c, j).filter(|t| t.kind == TokKind::Ident)?.clone();
    if !at(file, c, j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    // Scan the initializer to the statement-level `;`.
    let mut k = j + 2;
    let mut paren = 0i64;
    let mut brace = 0i64;
    let mut bracket = 0i64;
    let mut has_lock = false;
    let mut last_method: Option<String> = None;
    while k < c.len() {
        let t = &file.toks[c[k]];
        match t.text.as_str() {
            "(" if t.kind == TokKind::Punct => paren += 1,
            ")" if t.kind == TokKind::Punct => paren -= 1,
            "{" if t.kind == TokKind::Punct => brace += 1,
            "}" if t.kind == TokKind::Punct => brace -= 1,
            "[" if t.kind == TokKind::Punct => bracket += 1,
            "]" if t.kind == TokKind::Punct => bracket -= 1,
            ";" if t.kind == TokKind::Punct && paren == 0 && brace == 0 && bracket == 0 => {
                break;
            }
            "." if t.kind == TokKind::Punct => {
                if let (Some(m), Some(p)) = (at(file, c, k + 1), at(file, c, k + 2)) {
                    if m.kind == TokKind::Ident && p.is_punct('(') {
                        if m.is_ident("lock") {
                            has_lock = true;
                        }
                        last_method = Some(m.text.clone());
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    if has_lock
        && last_method
            .as_deref()
            .is_some_and(|m| GUARD_TAILS.contains(&m))
    {
        let line = name.line;
        return Some((
            Guard {
                name: name.text,
                depth,
                line,
            },
            k + 1,
        ));
    }
    None
}
