//! The lint passes. Each pass is a function from the modeled workspace
//! to diagnostics; `crate::run_lint` runs them all and applies
//! suppressions centrally.

pub mod api;
pub mod clocks;
pub mod features;
pub mod locks;
pub mod panics;
pub mod spec;
pub mod unsafe_audit;

use crate::lexer::{Tok, TokKind};
use crate::model::SourceFile;

/// Indices of the non-comment tokens of `file`, in order — the pattern
/// matchers work on this view so comments can never split a match.
pub(crate) fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect()
}

/// Indices of the non-comment tokens inside a body token span
/// (exclusive of the braces themselves).
pub(crate) fn code_indices_in(file: &SourceFile, span: (usize, usize)) -> Vec<usize> {
    (span.0 + 1..span.1)
        .filter(|&i| file.toks[i].kind != TokKind::Comment)
        .collect()
}

/// `toks[c[i]]` helper: the token at position `i` of a code-index view.
pub(crate) fn at<'a>(file: &'a SourceFile, c: &[usize], i: usize) -> Option<&'a Tok> {
    c.get(i).map(|&idx| &file.toks[idx])
}
