//! Panic bans: direct (protected files) and transitive
//! (request-path reachability through a conservative call graph).
//!
//! **Direct** (`panic`): the files every request or selection flows
//! through must not contain a panicking call outside tests — a panic
//! there kills a pool worker mid-connection (serve) or takes the whole
//! advise down (store hot paths). The lexer makes this exact: a
//! `.unwrap()` inside a string literal, doc comment or `#[cfg(test)]`
//! module is not a call.
//!
//! **Transitive** (`panic_reachable`): a panic does not need to live in
//! `server.rs` to kill a worker — it only needs to be *called* from one.
//! This pass builds a conservative intra-crate call graph of
//! `charles-serve` (call sites resolved by name: every fn with a
//! matching name is a possible callee; indirect calls through fn
//! pointers/closures are the documented blind spot — see
//! `docs/adr/0002-token-level-lint.md`) and walks it from the two
//! connection-handler entry points. Any panicking call in a reached fn
//! is flagged with its call chain.

use super::{at, code_indices, code_indices_in};
use crate::diag::{codes, Diagnostic};
use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile, WorkspaceFiles};
use std::collections::{HashMap, HashSet, VecDeque};

/// Files under the direct panic ban.
pub const PROTECTED_FILES: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/json.rs",
    "crates/store/src/bitmap/mod.rs",
    "crates/store/src/bitmap/compressed.rs",
    "crates/store/src/disk/mmap.rs",
];

/// The request-path entry fns of the serve crate: one per listener.
pub const ENTRY_FNS: &[&str] = &["handle_connection", "handle_wire_connection"];

/// The crate whose call graph is walked.
const GRAPH_CRATE: &str = "crates/serve/src";

/// One direct panicking call.
#[derive(Debug)]
pub(crate) struct PanicSite {
    pub line: u32,
    pub what: &'static str,
}

/// Find the unsuppressed direct panic sites in the code-token view `c`
/// of `file` (test tokens excluded).
pub(crate) fn panic_sites(file: &SourceFile, c: &[usize]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for i in 0..c.len() {
        if file.is_test_tok(c[i]) {
            continue;
        }
        let t = &file.toks[c[i]];
        // `.unwrap()` exactly — `unwrap_or_else`/`unwrap_or_default`
        // are distinct ident tokens and never match.
        if t.is_punct('.') {
            if let (Some(m), Some(p)) = (at(file, c, i + 1), at(file, c, i + 2)) {
                if m.is_ident("unwrap")
                    && p.is_punct('(')
                    && at(file, c, i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    out.push(PanicSite {
                        line: m.line,
                        what: ".unwrap()",
                    });
                } else if m.is_ident("expect") && p.is_punct('(') {
                    out.push(PanicSite {
                        line: m.line,
                        what: ".expect(..)",
                    });
                }
            }
        } else if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && at(file, c, i + 1).is_some_and(|n| n.is_punct('!'))
        {
            let what = match t.text.as_str() {
                "panic" => "panic!",
                "unreachable" => "unreachable!",
                "todo" => "todo!",
                _ => "unimplemented!",
            };
            out.push(PanicSite { line: t.line, what });
        }
    }
    out
}

/// The direct ban over [`PROTECTED_FILES`].
pub fn check_direct(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for rel in PROTECTED_FILES {
        let Some(file) = ws.file(rel) else {
            out.push(Diagnostic::new(
                codes::PANIC,
                *rel,
                0,
                "protected file is missing from the tree (update PROTECTED_FILES if it moved)",
            ));
            continue;
        };
        let c = code_indices(file);
        for site in panic_sites(file, &c) {
            out.push(Diagnostic::new(
                codes::PANIC,
                rel.to_string(),
                site.line,
                format!(
                    "panicking call {} in a request/selection path — answer an error instead, \
                     or suppress with `// lint:allow(panic) <reason>`",
                    site.what
                ),
            ));
        }
    }
}

/// One fn node of the call graph.
struct FnNode {
    file: usize,
    name: String,
    body: (usize, usize),
    line: u32,
}

/// The transitive reachability pass over the serve crate.
pub fn check_reachable(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    let files: Vec<&SourceFile> = ws.crate_src(GRAPH_CRATE).collect();
    // Collect every non-test fn with a body; key them by bare name.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for item in &file.items {
            if item.kind == ItemKind::Fn && !item.is_test {
                if let Some(body) = item.body {
                    nodes.push(FnNode {
                        file: fi,
                        name: item.name.clone(),
                        body,
                        line: item.line,
                    });
                }
            }
        }
    }
    for (ni, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(ni);
    }
    // BFS from the entry fns, recording one concrete call chain per fn.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for entry in ENTRY_FNS {
        for &ni in by_name.get(entry).map_or(&[][..], |v| v) {
            if seen.insert(ni) {
                queue.push_back(ni);
            }
        }
    }
    while let Some(ni) = queue.pop_front() {
        let node = &nodes[ni];
        let file = files[node.file];
        for callee in call_sites(file, node.body) {
            for &ci in by_name.get(callee.as_str()).map_or(&[][..], |v| v) {
                if seen.insert(ci) {
                    parent.insert(ci, ni);
                    queue.push_back(ci);
                }
            }
        }
    }
    // Flag panic sites in every reached fn. Sites in PROTECTED_FILES are
    // already covered by the direct ban — don't report them twice.
    let protected: HashSet<&str> = PROTECTED_FILES.iter().copied().collect();
    for &ni in &seen {
        let node = &nodes[ni];
        let file = files[node.file];
        if protected.contains(file.path.as_str()) {
            continue;
        }
        let c = code_indices_in(file, node.body);
        for site in panic_sites(file, &c) {
            out.push(Diagnostic::new(
                codes::PANIC_REACHABLE,
                file.path.clone(),
                site.line,
                format!(
                    "panicking call {} in `{}` (defined at line {}) is reachable from a \
                     request path: {} — return an error instead, or suppress with \
                     `// lint:allow(panic_reachable) <reason>`",
                    site.what,
                    node.name,
                    node.line,
                    chain(&nodes, &parent, ni)
                ),
            ));
        }
    }
}

/// Render the entry→…→fn call chain recorded by the BFS.
fn chain(nodes: &[FnNode], parent: &HashMap<usize, usize>, mut ni: usize) -> String {
    let mut names = vec![nodes[ni].name.clone()];
    while let Some(&p) = parent.get(&ni) {
        names.push(nodes[p].name.clone());
        ni = p;
        if names.len() > 32 {
            break; // cycles cannot happen (parents form a tree), but cap anyway
        }
    }
    names.reverse();
    names.join(" -> ")
}

/// The names this body might call: `name(…)` free/path calls and
/// `.name(…)` method calls. Macros (`name!`) and definitions
/// (`fn name`) are excluded; keywords that look like calls are not.
fn call_sites(file: &SourceFile, body: (usize, usize)) -> HashSet<String> {
    const NOT_CALLS: &[&str] = &[
        "if", "else", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move",
        "unsafe", "box", "await", "Some", "None", "Ok", "Err",
    ];
    let c = code_indices_in(file, body);
    let mut out = HashSet::new();
    for i in 0..c.len() {
        let t = &file.toks[c[i]];
        if t.kind != TokKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(next) = at(file, &c, i + 1) else {
            continue;
        };
        if !next.is_punct('(') {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && file.toks[c[i - 1]].is_ident("fn") {
            continue;
        }
        out.insert(t.text.clone());
    }
    out
}
