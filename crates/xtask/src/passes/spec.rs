//! Spec consistency (`spec_drift`, `readme_drift`).
//!
//! `docs/lint/registry.txt` is the single machine-readable registry of
//! the constants the serve/wire surface promises: wire magic/version/
//! header size/payload bounds, every request and response opcode, and
//! every stable error-code string with its HTTP status. This pass
//! *extracts the same facts from the source* — const declarations in
//! `wire.rs`, `ApiError` construction sites and the `core_error` /
//! `http_error_code` mapping fns in `server.rs`, the `HttpError::status`
//! mapping in `http.rs` — and cross-checks both directions, then checks
//! the README tables mention every registry entry. Code/doc drift fails
//! CI instead of waiting for a human to notice.

use super::{at, code_indices, code_indices_in};
use crate::diag::{codes, Diagnostic};
use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile, WorkspaceFiles};
use std::collections::BTreeMap;
use std::path::Path;

/// Repo-relative path of the registry.
pub const REGISTRY_PATH: &str = "docs/lint/registry.txt";

/// The parsed registry: section name → key → value (value may be empty).
pub type Registry = BTreeMap<String, BTreeMap<String, String>>;

/// Parse the `[section]` / `key = value` registry format. Lines
/// starting with `#` and blank lines are ignored.
pub fn parse_registry(text: &str) -> Registry {
    let mut out = Registry::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = match line.split_once('=') {
            Some((k, v)) => (k.trim().to_string(), v.trim().to_string()),
            None => (line.to_string(), String::new()),
        };
        out.entry(section.clone()).or_default().insert(key, value);
    }
    out
}

/// Run the pass.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    let registry_file = ws.root.join(REGISTRY_PATH);
    let Ok(text) = std::fs::read_to_string(&registry_file) else {
        out.push(Diagnostic::new(
            codes::SPEC_DRIFT,
            REGISTRY_PATH,
            0,
            "registry file is missing — it is the committed source of truth for wire \
             constants and error codes",
        ));
        return;
    };
    let registry = parse_registry(&text);
    let registered = |section: &str| registry.get(section).is_some_and(|s| !s.is_empty());
    match ws.file("crates/serve/src/wire.rs") {
        Some(wire) => check_wire_consts(wire, &registry, out),
        None if registered("wire.constants") || registered("wire.request_opcodes") => {
            out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/wire.rs",
                0,
                "the registry has wire entries but wire.rs is gone from the tree",
            ));
        }
        None => {}
    }
    match ws.file("crates/serve/src/server.rs") {
        Some(server) => {
            check_error_codes(server, ws.file("crates/serve/src/http.rs"), &registry, out);
        }
        None if registered("serve.error_codes") => {
            out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/server.rs",
                0,
                "the registry has error-code entries but server.rs is gone from the tree",
            ));
        }
        None => {}
    }
    check_readme(&ws.root, &registry, out);
}

/// Value of a simple const initializer: integer literal, `a << b`,
/// `a * b`, or a (possibly `*`-deref'd) byte-string literal.
fn eval_const(file: &SourceFile, c: &[usize], mut i: usize, end: usize) -> Option<String> {
    let mut nums: Vec<u64> = Vec::new();
    let mut op: Option<char> = None;
    while i < end {
        let t = &file.toks[c[i]];
        match t.kind {
            TokKind::Number => nums.push(parse_int(&t.text)?),
            TokKind::Str => return Some(t.str_value()),
            TokKind::Punct => match t.text.as_str() {
                "<" => op = Some('<'),
                ">" => {}
                "*" if nums.is_empty() && op.is_none() => {} // deref of b"…"
                "*" => op = Some('*'),
                ";" => break,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    match (nums.as_slice(), op) {
        ([a], None) => Some(a.to_string()),
        ([a, b], Some('<')) => Some((a << b).to_string()),
        ([a, b], Some('*')) => Some((a * b).to_string()),
        _ => None,
    }
}

fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    // Suffix-stripping above also eats the `x` of a bare `0x…` hex
    // literal's digits only if they are alphabetic — re-detect prefix
    // from the original text instead.
    let orig = text.replace('_', "");
    if let Some(hex) = orig.strip_prefix("0x").or_else(|| orig.strip_prefix("0X")) {
        let hex: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return u64::from_str_radix(&hex, 16).ok();
    }
    t.parse().ok()
}

/// Registry values: `0x…` hex or decimal, compared numerically where
/// both parse, else as strings.
fn values_match(registry: &str, source: &str) -> bool {
    let reg_num = registry
        .strip_prefix("0x")
        .or_else(|| registry.strip_prefix("0X"))
        .map_or_else(
            || registry.parse::<u64>().ok(),
            |h| u64::from_str_radix(h, 16).ok(),
        );
    match (reg_num, source.parse::<u64>().ok()) {
        (Some(a), Some(b)) => a == b,
        _ => registry == source,
    }
}

fn check_wire_consts(wire: &SourceFile, registry: &Registry, out: &mut Vec<Diagnostic>) {
    // Extract every `const NAME: … = …;` with its line + value.
    let c = code_indices(wire);
    let mut consts: BTreeMap<String, (u32, Option<String>)> = BTreeMap::new();
    for i in 0..c.len() {
        let t = &wire.toks[c[i]];
        if !t.is_ident("const") || wire.is_test_tok(c[i]) {
            continue;
        }
        // `const fn` is not a const item; `NAME` must follow.
        let Some(name) = at(wire, &c, i + 1).filter(|t| t.kind == TokKind::Ident && t.text != "fn")
        else {
            continue;
        };
        // Find the top-level `=` before the terminating `;` — the type
        // ascription may itself contain `;` (e.g. `[u8; 4]`).
        let mut j = i + 2;
        let mut eq = None;
        let mut bracket = 0i64;
        while j < c.len() {
            let tk = &wire.toks[c[j]];
            if tk.is_punct('[') {
                bracket += 1;
            } else if tk.is_punct(']') {
                bracket -= 1;
            } else if tk.is_punct('=') && bracket == 0 {
                eq = Some(j + 1);
                break;
            } else if tk.is_punct(';') && bracket == 0 {
                break;
            }
            j += 1;
        }
        let value = eq.and_then(|start| {
            let mut end = start;
            while end < c.len() && !wire.toks[c[end]].is_punct(';') {
                end += 1;
            }
            eval_const(wire, &c, start, end)
        });
        consts.insert(name.text.clone(), (name.line, value));
    }

    let empty = BTreeMap::new();
    let named = registry.get("wire.constants").unwrap_or(&empty);
    let req = registry.get("wire.request_opcodes").unwrap_or(&empty);
    let resp = registry.get("wire.response_opcodes").unwrap_or(&empty);

    for (section, entries) in [
        ("wire.constants", named),
        ("wire.request_opcodes", req),
        ("wire.response_opcodes", resp),
    ] {
        for (key, reg_value) in entries {
            match consts.get(key) {
                None => out.push(Diagnostic::new(
                    codes::SPEC_DRIFT,
                    "crates/serve/src/wire.rs",
                    0,
                    format!(
                        "registry [{section}] lists `{key} = {reg_value}` but wire.rs declares \
                         no such const"
                    ),
                )),
                Some((line, Some(src_value))) if !values_match(reg_value, src_value) => {
                    out.push(Diagnostic::new(
                        codes::SPEC_DRIFT,
                        "crates/serve/src/wire.rs",
                        *line,
                        format!(
                            "`{key}` is {src_value} in source but {reg_value} in the registry \
                             [{section}] — update whichever is wrong (the registry is the spec)"
                        ),
                    ));
                }
                Some((line, None)) => out.push(Diagnostic::new(
                    codes::SPEC_DRIFT,
                    "crates/serve/src/wire.rs",
                    *line,
                    format!(
                        "`{key}` has an initializer the lint cannot evaluate — keep registry \
                         consts to literals, shifts and products"
                    ),
                )),
                Some(_) => {}
            }
        }
    }
    // Reverse direction: every opcode const in source must be registered.
    for (name, (line, _)) in &consts {
        let section = if name.starts_with("OP_") {
            Some(("wire.request_opcodes", req))
        } else if name.starts_with("RESP_") {
            Some(("wire.response_opcodes", resp))
        } else {
            None
        };
        if let Some((section, entries)) = section {
            if !entries.contains_key(name) {
                out.push(Diagnostic::new(
                    codes::SPEC_DRIFT,
                    "crates/serve/src/wire.rs",
                    *line,
                    format!(
                        "opcode const `{name}` is not in the registry [{section}] — new \
                         opcodes are a protocol change and must be registered (and documented \
                         in the README table)"
                    ),
                ));
            }
        }
    }
}

/// Extract `(status, code)` pairs from `server.rs` + the transport
/// variant→code/status mappings, and check them against the registry.
fn check_error_codes(
    server: &SourceFile,
    http: Option<&SourceFile>,
    registry: &Registry,
    out: &mut Vec<Diagnostic>,
) {
    let mut extracted: BTreeMap<String, (u16, u32)> = BTreeMap::new(); // code -> (status, line)
    let c = code_indices(server);
    let snake = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && s.contains('_')
    };
    for i in 0..c.len() {
        if server.is_test_tok(c[i]) {
            continue;
        }
        let t = &server.toks[c[i]];
        // A: ApiError :: new ( NUM , STR
        if t.is_ident("ApiError")
            && at(server, &c, i + 1).is_some_and(|t| t.is_punct(':'))
            && at(server, &c, i + 2).is_some_and(|t| t.is_punct(':'))
            && at(server, &c, i + 3).is_some_and(|t| t.is_ident("new"))
            && at(server, &c, i + 4).is_some_and(|t| t.is_punct('('))
        {
            if let (Some(num), Some(code)) = (at(server, &c, i + 5), at(server, &c, i + 7)) {
                if num.kind == TokKind::Number && code.kind == TokKind::Str {
                    if let Ok(status) = num.text.parse() {
                        extracted
                            .entry(code.str_value())
                            .or_insert((status, code.line));
                    }
                }
            }
        }
        // B: struct literal `status: NUM, … code: STR`
        if t.is_ident("code") && at(server, &c, i + 1).is_some_and(|t| t.is_punct(':')) {
            if let Some(code) = at(server, &c, i + 2).filter(|t| t.kind == TokKind::Str) {
                let mut status = None;
                for back in (i.saturating_sub(8)..i).rev() {
                    if server.toks[c[back]].is_ident("status")
                        && at(server, &c, back + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        if let Some(num) =
                            at(server, &c, back + 2).filter(|t| t.kind == TokKind::Number)
                        {
                            status = num.text.parse().ok();
                        }
                        break;
                    }
                }
                if let Some(status) = status {
                    extracted
                        .entry(code.str_value())
                        .or_insert((status, code.line));
                }
            }
        }
        // C: `( NUM , STR )` status/code tuples (core_error match arms)
        // D: `( NUM , encode_error ( STR` (route()'s direct responses)
        if t.is_punct('(') {
            if let (Some(num), Some(comma)) = (at(server, &c, i + 1), at(server, &c, i + 2)) {
                if num.kind == TokKind::Number && comma.is_punct(',') {
                    let code_tok = match at(server, &c, i + 3) {
                        Some(t3)
                            if t3.kind == TokKind::Str
                                && at(server, &c, i + 4).is_some_and(|t| t.is_punct(')')) =>
                        {
                            Some(t3)
                        }
                        Some(t3)
                            if t3.is_ident("encode_error")
                                && at(server, &c, i + 4).is_some_and(|t| t.is_punct('(')) =>
                        {
                            at(server, &c, i + 5).filter(|t| t.kind == TokKind::Str)
                        }
                        _ => None,
                    };
                    if let Some(code) = code_tok {
                        let value = code.str_value();
                        if snake(&value) {
                            if let Ok(status) = num.text.parse::<u16>() {
                                if (400..600).contains(&status) {
                                    extracted.entry(value).or_insert((status, code.line));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let empty = BTreeMap::new();
    let reg_codes = registry.get("serve.error_codes").unwrap_or(&empty);
    for (code, status) in reg_codes {
        match extracted.get(code) {
            None => out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/server.rs",
                0,
                format!(
                    "registry [serve.error_codes] lists `{code} = {status}` but server.rs \
                     never constructs that code"
                ),
            )),
            Some((src_status, line)) if status != &src_status.to_string() => {
                out.push(Diagnostic::new(
                    codes::SPEC_DRIFT,
                    "crates/serve/src/server.rs",
                    *line,
                    format!(
                        "error code `{code}` answers {src_status} in source but the registry \
                         says {status}"
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for (code, (status, line)) in &extracted {
        if !reg_codes.contains_key(code) {
            out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/server.rs",
                *line,
                format!(
                    "error code `{code}` ({status}) is constructed in server.rs but missing \
                     from the registry [serve.error_codes] — stable codes are API and must be \
                     registered (and listed in the README)"
                ),
            ));
        }
    }

    // Transport codes: join http_error_code's variant→code map with
    // HttpError::status's variant→status map.
    let reg_transport = registry
        .get("serve.transport_error_codes")
        .unwrap_or(&empty);
    let variant_code = match_arms(server, "http_error_code");
    let variant_status = http.map(|f| match_arms(f, "status")).unwrap_or_default();
    let mut transport: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for (variants, (code, line)) in &variant_code {
        for v in variants {
            let status = variant_status
                .iter()
                .find(|(vs, _)| vs.contains(v))
                .map(|(_, (s, _))| s.clone());
            let entry = transport
                .entry(code.clone())
                .or_insert((status.clone().unwrap_or_default(), *line));
            // `_ => "bad_request"` has no variant list; keep first status.
            if entry.0.is_empty() {
                if let Some(s) = status {
                    entry.0 = s;
                }
            }
        }
        if variants.is_empty() {
            // Wildcard arm: status is whatever http.rs's wildcard-free
            // grouping answers for the remaining variants (400 here);
            // registry value is authoritative, only presence is checked.
            transport
                .entry(code.clone())
                .or_insert((String::new(), *line));
        }
    }
    for (code, status) in reg_transport {
        match transport.get(code) {
            None => out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/server.rs",
                0,
                format!(
                    "registry [serve.transport_error_codes] lists `{code} = {status}` but \
                     `http_error_code` never returns it"
                ),
            )),
            Some((src_status, line)) if !src_status.is_empty() && status != src_status => {
                out.push(Diagnostic::new(
                    codes::SPEC_DRIFT,
                    "crates/serve/src/server.rs",
                    *line,
                    format!(
                        "transport code `{code}` maps to status {src_status} in source but \
                         the registry says {status}"
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for (code, (_, line)) in &transport {
        if !reg_transport.contains_key(code) {
            out.push(Diagnostic::new(
                codes::SPEC_DRIFT,
                "crates/serve/src/server.rs",
                *line,
                format!(
                    "transport code `{code}` is returned by `http_error_code` but missing \
                     from the registry [serve.transport_error_codes]"
                ),
            ));
        }
    }
}

/// The arms of the single `match` in fn `name`: for each arm, the
/// `HttpError::Variant` names on the pattern side and the result token
/// (a string's value or a number's text) with its line.
fn match_arms(file: &SourceFile, fn_name: &str) -> Vec<(Vec<String>, (String, u32))> {
    let mut out = Vec::new();
    let Some(item) = file
        .items
        .iter()
        .find(|i| i.kind == ItemKind::Fn && i.name == fn_name && !i.is_test)
    else {
        return out;
    };
    let Some(body) = item.body else { return out };
    let c = code_indices_in(file, body);
    let mut i = 0;
    let mut variants: Vec<String> = Vec::new();
    while i < c.len() {
        let t = &file.toks[c[i]];
        if t.is_ident("HttpError")
            && at(file, &c, i + 1).is_some_and(|t| t.is_punct(':'))
            && at(file, &c, i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = at(file, &c, i + 3).filter(|t| t.kind == TokKind::Ident) {
                variants.push(v.text.clone());
            }
            i += 4;
            continue;
        }
        // `=> result` ends an arm.
        if t.is_punct('=') && at(file, &c, i + 1).is_some_and(|t| t.is_punct('>')) {
            if let Some(result) = at(file, &c, i + 2) {
                let value = match result.kind {
                    TokKind::Str => Some(result.str_value()),
                    TokKind::Number => Some(result.text.clone()),
                    _ => None,
                };
                if let Some(value) = value {
                    out.push((std::mem::take(&mut variants), (value, result.line)));
                } else {
                    variants.clear();
                }
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// README drift: every registered error code must appear as `` `code` ``
/// and every opcode's hex value must appear somewhere in README.md.
fn check_readme(root: &Path, registry: &Registry, out: &mut Vec<Diagnostic>) {
    let Ok(readme) = std::fs::read_to_string(root.join("README.md")) else {
        out.push(Diagnostic::new(
            codes::README_DRIFT,
            "README.md",
            0,
            "README.md missing",
        ));
        return;
    };
    let empty = BTreeMap::new();
    for section in ["serve.error_codes", "serve.transport_error_codes"] {
        for code in registry.get(section).unwrap_or(&empty).keys() {
            if !readme.contains(&format!("`{code}`")) {
                out.push(Diagnostic::new(
                    codes::README_DRIFT,
                    "README.md",
                    0,
                    format!(
                        "registered error code `{code}` ([{section}]) is not documented in \
                         the README error-code table"
                    ),
                ));
            }
        }
    }
    for section in ["wire.request_opcodes", "wire.response_opcodes"] {
        for (name, value) in registry.get(section).unwrap_or(&empty) {
            if !readme.contains(value.as_str()) {
                out.push(Diagnostic::new(
                    codes::README_DRIFT,
                    "README.md",
                    0,
                    format!(
                        "opcode `{name}` = {value} ([{section}]) is not documented in the \
                         README opcode table"
                    ),
                ));
            }
        }
    }
}
