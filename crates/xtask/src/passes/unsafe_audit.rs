//! Unsafe audit (`unsafe_module`, `unsafe_undocumented`).
//!
//! Two guarantees, machine-checked:
//!
//! 1. `unsafe` may only appear in modules on the committed allowlist
//!    ([`ALLOWED_FILES`]) — today the raw `mmap(2)` wrapper. New unsafe
//!    anywhere else is a review decision, not a drive-by.
//! 2. Every `unsafe` block / fn / impl / trait needs its own adjacent
//!    `// SAFETY:` comment: either trailing on the same line, or a
//!    comment ending directly above the statement (attribute lines and
//!    one blank line may intervene, other code may not). Two unsafe
//!    impls cannot share one comment — each states its own argument.

use crate::diag::{codes, Diagnostic};
use crate::lexer::TokKind;
use crate::model::{SourceFile, WorkspaceFiles};

/// Files permitted to contain `unsafe` at all.
pub const ALLOWED_FILES: &[&str] = &["crates/store/src/disk/mmap.rs"];

/// Run the pass over the whole workspace.
pub fn check(ws: &WorkspaceFiles, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        check_file(file, out);
    }
}

pub(crate) fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, t) in file.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || file.is_test_tok(i) {
            continue;
        }
        let what = file.toks[i + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment)
            .map_or("unsafe", |n| match n.text.as_str() {
                "{" => "unsafe block",
                "fn" => "unsafe fn",
                "impl" => "unsafe impl",
                "trait" => "unsafe trait",
                _ => "unsafe",
            });
        if !ALLOWED_FILES.contains(&file.path.as_str()) {
            out.push(Diagnostic::new(
                codes::UNSAFE_MODULE,
                file.path.clone(),
                t.line,
                format!(
                    "{what} outside the unsafe allowlist — if this module genuinely needs \
                     unsafe, add it to `passes::unsafe_audit::ALLOWED_FILES` in a reviewed \
                     change"
                ),
            ));
        }
        if !has_adjacent_safety_comment(file, i, t.line) {
            out.push(Diagnostic::new(
                codes::UNSAFE_UNDOCUMENTED,
                file.path.clone(),
                t.line,
                format!(
                    "{what} without its own adjacent `// SAFETY:` comment — state the \
                     invariant that makes this sound directly above the statement (shared \
                     comments don't count: each unsafe site documents itself)"
                ),
            ));
        }
    }
}

/// Is there a `SAFETY:` comment trailing on `line`, or ending directly
/// above the first code line of the statement containing token `i`?
fn has_adjacent_safety_comment(file: &SourceFile, i: usize, line: u32) -> bool {
    // Trailing on the same line.
    if file
        .toks
        .iter()
        .any(|t| t.kind == TokKind::Comment && t.line == line && t.text.contains("SAFETY:"))
    {
        return true;
    }
    // Directly above: the nearest preceding SAFETY comment — extended
    // through the contiguous comment run it opens (a `// SAFETY: …`
    // explanation usually wraps over several `//` lines) — must end
    // within 2 lines of the unsafe token's line, and every line strictly
    // between must hold no code (comments/attributes/blank only).
    let Some(at) = file.toks[..i]
        .iter()
        .rposition(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY:"))
    else {
        return false;
    };
    let mut comment_end = file.toks[at].line + file.toks[at].text.matches('\n').count() as u32;
    for t in &file.toks[at + 1..i] {
        if t.kind == TokKind::Comment && t.line <= comment_end + 1 {
            comment_end = comment_end.max(t.line + t.text.matches('\n').count() as u32);
        }
    }
    if comment_end >= line || line - comment_end > 2 {
        return false;
    }
    ((comment_end + 1)..line).all(|l| !file.line_has_code(l))
}
