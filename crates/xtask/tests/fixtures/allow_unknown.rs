// Fixture: suppression naming a code the engine does not emit
// (`allow_unknown`).
pub fn handle() -> u32 {
    41 + 1 // lint:allow(made_up_code) this code does not exist
}
