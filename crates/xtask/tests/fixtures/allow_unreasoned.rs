// Fixture: suppression without a reason (`allow_unreasoned`) — and the
// suppressed diagnostic must still fire.
pub fn handle(input: Option<u32>) -> u32 {
    input.unwrap() // lint:allow(panic)
}
