//! Fixture: the false-positive regression file. Everything in here
//! *looks* like a violation to a substring scanner and must produce
//! ZERO diagnostics from the token-level engine. The harness places it
//! at a protected serve path AND at a core path.
//!
//! Doc-comment mentions: call `.unwrap()` or `Instant::now()` — not code.
//! Doc-comment suppression mention: `lint:allow(panic)` — not a suppression.

/// Returns the message, never calls `.unwrap()` despite saying so.
pub fn handle(input: Option<u32>) -> u32 {
    // A comment may say x.unwrap() or .expect("boom") or panic!("x").
    // A comment may also say Instant::now() without reading a clock.
    let s = "error: .unwrap() failed at Instant::now(), SystemTime::now()";
    let r = r#"raw: .expect("oops") unreachable!() todo!()"#;
    let c = '!';
    input.unwrap_or(s.len() as u32 + r.len() as u32 + c as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let _t = std::time::Instant::now();
        let g = std::sync::Mutex::new(0u32);
        let held = g.lock().unwrap();
        assert_eq!(*held, 0);
    }
}
