// Fixture: ambient clock ban (`clock`). Placed under crates/core/src.
use std::time::Instant;

pub fn decide() -> Instant {
    Instant::now()
}
