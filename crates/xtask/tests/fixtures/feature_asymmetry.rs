// Fixture: feature-gate symmetry (`feature_asymmetry`): a `parallel`
// gate with no `not(feature = "parallel")` sibling anywhere in the file.
#[cfg(feature = "parallel")]
pub fn evaluate() -> u32 {
    42
}
