// Fixture: mutex guard across blocking I/O (`lock_io`). Placed in the
// serve crate. The write on line 8 happens while `sessions` is live;
// the read on line 13 happens after the guard's block ended and is fine.
use std::io::Write;
pub fn respond(stream: &mut std::net::TcpStream, lock: &std::sync::Mutex<u32>) {
    {
        let sessions = lock.lock().unwrap_or_else(|p| p.into_inner());
        stream.write_all(&sessions.to_le_bytes()).ok();
    }
    let early = lock.lock().unwrap_or_else(|p| p.into_inner());
    drop(early);
    let mut buf = [0u8; 4];
    std::io::Read::read(stream, &mut buf).ok();
}
