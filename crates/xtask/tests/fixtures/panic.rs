// Fixture: direct panic ban (`panic`). Placed at a protected path by
// the test harness; the unwrap on line 5 must be flagged.
pub fn handle(input: Option<u32>) -> u32 {
    let v = input;
    v.unwrap()
}
