// Fixture: transitive panic ban (`panic_reachable`). Placed in the
// serve crate at a NON-protected path: the panic lives two hops from
// the entry fn and only the call graph can see it.
fn handle_connection(stream: u32) {
    dispatch(stream);
}

fn dispatch(stream: u32) {
    decode(stream);
}

fn decode(stream: u32) -> u32 {
    let v: Option<u32> = Some(stream);
    v.expect("decode failure") // line 14: reachable via handle_connection -> dispatch -> decode
}
