// Fixture: spec registry cross-check (`spec_drift`). Placed at the
// wire.rs path with a VERSION that disagrees with the fixture registry
// (which says VERSION = 2).
pub const MAGIC: [u8; 4] = *b"CHRW";
pub const VERSION: u8 = 1;
pub const HEADER_LEN: usize = 10;
