// Fixture: unsafe allowlist (`unsafe_module`). Placed OUTSIDE the
// allowlisted mmap module; the SAFETY comment is present so only the
// allowlist rule fires.
pub fn peek(bytes: &[u8]) -> u8 {
    // SAFETY: caller guarantees bytes is non-empty (it is not; that is
    // the point of the ban).
    unsafe { *bytes.as_ptr() }
}
