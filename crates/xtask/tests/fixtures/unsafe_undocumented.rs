// Fixture: SAFETY-comment rule (`unsafe_undocumented`). Placed at the
// allowlisted mmap path so only the missing comment fires. The comment
// above the first block is too far away (3+ lines); the second block
// shares a line with its comment and passes.
pub fn read(ptr: *const u8) -> u8 {
    // SAFETY: this comment is separated from the unsafe block

    let _padding = 1;
    unsafe { *ptr }
}

pub fn read2(ptr: *const u8) -> u8 {
    unsafe { *ptr } // SAFETY: trailing comments on the same line count
}
