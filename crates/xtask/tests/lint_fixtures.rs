//! The lint engine against its fixture corpus: every diagnostic code
//! has one known-bad fixture that must fire at the right file/line,
//! plus the false-positive regression fixture that must stay silent —
//! and a self-run proving the real workspace is clean.
//!
//! Fixtures live in `tests/fixtures/` (the workspace scanner skips
//! `tests/` directories, so they never lint the real tree). Each test
//! stages them into a throwaway workspace under the OS temp dir at the
//! path that puts them in the relevant pass's scope.

use charles_xtask::diag::{codes, Diagnostic};
use charles_xtask::run_lint;
use std::fs;

/// Stage `files` into a fresh temp workspace, lint it, clean up.
fn lint_workspace(name: &str, files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let root = std::env::temp_dir().join(format!(
        "charles-lint-fixture-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dir");
        fs::write(&path, content).expect("write fixture");
    }
    let out = run_lint(&root);
    let _ = fs::remove_dir_all(&root);
    out
}

fn has(diags: &[Diagnostic], code: &str, file: &str, line: u32) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.file == file && d.line == line)
}

#[test]
fn panic_fixture_fires_in_a_protected_file() {
    let diags = lint_workspace(
        "panic",
        &[(
            "crates/serve/src/server.rs",
            include_str!("fixtures/panic.rs"),
        )],
    );
    assert!(
        has(&diags, codes::PANIC, "crates/serve/src/server.rs", 5),
        "expected panic at server.rs:5, got: {diags:?}"
    );
}

#[test]
fn panic_reachable_fixture_fires_through_the_call_graph() {
    let diags = lint_workspace(
        "reachable",
        &[(
            "crates/serve/src/router.rs",
            include_str!("fixtures/panic_reachable.rs"),
        )],
    );
    let hit = diags
        .iter()
        .find(|d| d.code == codes::PANIC_REACHABLE)
        .expect("panic_reachable fires");
    assert_eq!(
        (hit.file.as_str(), hit.line),
        ("crates/serve/src/router.rs", 14)
    );
    assert!(
        hit.detail
            .contains("handle_connection -> dispatch -> decode"),
        "call chain rendered: {}",
        hit.detail
    );
}

#[test]
fn clock_fixture_fires_in_the_core() {
    let diags = lint_workspace(
        "clock",
        &[(
            "crates/core/src/decide.rs",
            include_str!("fixtures/clock.rs"),
        )],
    );
    assert!(
        has(&diags, codes::CLOCK, "crates/core/src/decide.rs", 5),
        "expected clock at decide.rs:5, got: {diags:?}"
    );
}

#[test]
fn feature_asymmetry_fixture_fires() {
    let diags = lint_workspace(
        "features",
        &[(
            "crates/core/src/par.rs",
            include_str!("fixtures/feature_asymmetry.rs"),
        )],
    );
    assert!(
        has(
            &diags,
            codes::FEATURE_ASYMMETRY,
            "crates/core/src/par.rs",
            3
        ),
        "expected feature_asymmetry at par.rs:3, got: {diags:?}"
    );
}

#[test]
fn unsafe_module_fixture_fires_outside_the_allowlist() {
    let diags = lint_workspace(
        "unsafe-module",
        &[(
            "crates/serve/src/peek.rs",
            include_str!("fixtures/unsafe_module.rs"),
        )],
    );
    assert!(
        has(&diags, codes::UNSAFE_MODULE, "crates/serve/src/peek.rs", 7),
        "expected unsafe_module at peek.rs:7, got: {diags:?}"
    );
    // The SAFETY comment is present, so the documentation rule is quiet.
    assert!(!diags.iter().any(|d| d.code == codes::UNSAFE_UNDOCUMENTED));
}

#[test]
fn unsafe_undocumented_fixture_fires_only_on_the_distant_comment() {
    let diags = lint_workspace(
        "unsafe-undoc",
        &[(
            "crates/store/src/disk/mmap.rs",
            include_str!("fixtures/unsafe_undocumented.rs"),
        )],
    );
    assert!(
        has(
            &diags,
            codes::UNSAFE_UNDOCUMENTED,
            "crates/store/src/disk/mmap.rs",
            9
        ),
        "expected unsafe_undocumented at mmap.rs:9, got: {diags:?}"
    );
    // Same-line trailing SAFETY comment on line 13 passes; the file is
    // allowlisted so unsafe_module stays quiet.
    assert!(!has(
        &diags,
        codes::UNSAFE_UNDOCUMENTED,
        "crates/store/src/disk/mmap.rs",
        13
    ));
    assert!(!diags.iter().any(|d| d.code == codes::UNSAFE_MODULE));
}

#[test]
fn lock_io_fixture_fires_on_the_live_guard_only() {
    let diags = lint_workspace(
        "lock-io",
        &[(
            "crates/serve/src/conn.rs",
            include_str!("fixtures/lock_io.rs"),
        )],
    );
    assert!(
        has(&diags, codes::LOCK_IO, "crates/serve/src/conn.rs", 8),
        "expected lock_io at conn.rs:8, got: {diags:?}"
    );
    // After the guard's block ends (and after drop()), I/O is fine.
    assert_eq!(diags.iter().filter(|d| d.code == codes::LOCK_IO).count(), 1);
}

#[test]
fn spec_drift_fixture_fires_on_a_registry_mismatch() {
    let diags = lint_workspace(
        "spec",
        &[
            (
                "crates/serve/src/wire.rs",
                include_str!("fixtures/spec_drift.rs"),
            ),
            (
                "docs/lint/registry.txt",
                "[wire.constants]\nMAGIC = CHRW\nVERSION = 2\nHEADER_LEN = 10\n",
            ),
        ],
    );
    let hit = diags
        .iter()
        .find(|d| d.code == codes::SPEC_DRIFT && d.line == 5)
        .expect("spec_drift fires on the VERSION line");
    assert_eq!(hit.file, "crates/serve/src/wire.rs");
    assert!(hit
        .detail
        .contains("`VERSION` is 1 in source but 2 in the registry"));
}

#[test]
fn readme_drift_fixture_fires_on_an_undocumented_code() {
    let diags = lint_workspace(
        "readme",
        &[
            (
                "docs/lint/registry.txt",
                "[serve.error_codes]\nghost_code = 404\n",
            ),
            (
                "README.md",
                "# fixture readme\nNo error codes documented here.\n",
            ),
        ],
    );
    let hit = diags
        .iter()
        .find(|d| d.code == codes::README_DRIFT)
        .expect("readme_drift fires");
    assert_eq!(hit.file, "README.md");
    assert!(hit.detail.contains("ghost_code"));
}

#[test]
fn api_snapshot_fixture_fires_without_a_committed_snapshot() {
    let diags = lint_workspace("api", &[("crates/core/src/lib.rs", "pub fn advise() {}\n")]);
    assert!(
        has(&diags, codes::API_SNAPSHOT, "docs/api/charles-core.txt", 0),
        "expected api_snapshot for charles-core, got: {diags:?}"
    );
}

#[test]
fn api_snapshot_reports_the_exact_drifted_lines() {
    let diags = lint_workspace(
        "api-drift",
        &[
            ("crates/core/src/lib.rs", "pub fn advise() {}\n"),
            ("docs/api/charles-core.txt", "pub fn retired\n"),
        ],
    );
    let details: Vec<&str> = diags
        .iter()
        .filter(|d| d.code == codes::API_SNAPSHOT)
        .map(|d| d.detail.as_str())
        .collect();
    assert!(details
        .iter()
        .any(|d| d.contains("`pub fn advise`") && d.contains("absent")));
    assert!(details
        .iter()
        .any(|d| d.contains("`pub fn retired`") && d.contains("gone")));
}

#[test]
fn allow_unreasoned_fixture_fires_and_does_not_suppress() {
    let diags = lint_workspace(
        "unreasoned",
        &[(
            "crates/serve/src/server.rs",
            include_str!("fixtures/allow_unreasoned.rs"),
        )],
    );
    assert!(has(
        &diags,
        codes::ALLOW_UNREASONED,
        "crates/serve/src/server.rs",
        4
    ));
    assert!(
        has(&diags, codes::PANIC, "crates/serve/src/server.rs", 4),
        "a reasonless allow must not suppress: {diags:?}"
    );
}

#[test]
fn allow_unknown_fixture_fires() {
    let diags = lint_workspace(
        "unknown",
        &[(
            "crates/core/src/x.rs",
            include_str!("fixtures/allow_unknown.rs"),
        )],
    );
    assert!(has(&diags, codes::ALLOW_UNKNOWN, "crates/core/src/x.rs", 4));
}

#[test]
fn reasoned_allow_suppresses_the_diagnostic() {
    let diags = lint_workspace(
        "reasoned",
        &[(
            "crates/serve/src/server.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic) fixture proves reasoned allows work\n}\n",
        )],
    );
    assert!(!diags.iter().any(|d| d.code == codes::PANIC && d.line == 2));
    assert!(!diags.iter().any(|d| d.code == codes::ALLOW_UNREASONED));
}

#[test]
fn clean_fixture_produces_zero_diagnostics_for_its_files() {
    // The same battery of lookalikes, staged into BOTH ban scopes.
    let diags = lint_workspace(
        "clean",
        &[
            (
                "crates/serve/src/server.rs",
                include_str!("fixtures/clean.rs"),
            ),
            (
                "crates/core/src/clean.rs",
                include_str!("fixtures/clean.rs"),
            ),
        ],
    );
    let offending: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.file == "crates/serve/src/server.rs" || d.file == "crates/core/src/clean.rs")
        .collect();
    assert!(
        offending.is_empty(),
        "false positives on the clean fixture: {offending:?}"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let diags = run_lint(&charles_xtask::workspace_root());
    assert!(
        diags.is_empty(),
        "the real tree must lint clean; run `cargo run -p charles-xtask -- lint`:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
