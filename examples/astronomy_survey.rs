//! Astronomy walk-through: from "total ignorance to topic familiarity".
//!
//! ```sh
//! cargo run --example astronomy_survey
//! ```
//!
//! The demo proposal promises to "strip down [a database's] content in a
//! few minutes, and bring the audience from a state of total ignorance to
//! topic familiarity". This example scripts that demonstration on the
//! synthetic sky catalogue: it narrates what Charles finds at each step,
//! compares the paper's default median cuts with the §5.2 quantile
//! extension on the skewed redshift column, and prints the HB-cuts trace.

use charles::advisor::{homogeneity, quantile_cut_query, surprise, Explorer, StopReason};
use charles::viz::{segment_rows, segment_sparklines, stacked_bar, treemap};
use charles::{astro_table, Advisor, Config, Query, Segmentation};

fn main() {
    let sky = astro_table(50_000, 7);
    println!(
        "sky catalogue: {} objects, schema {}\n",
        sky.len(),
        sky.schema()
    );

    // Step 1: blank-slate exploration over the physics columns.
    let advisor = Advisor::new(&sky);
    let advice = advisor
        .advise_str("(class: , magnitude: , redshift: , survey: , dec: )")
        .expect("context parses");
    println!("=== step 1: what is in this database? ===");
    println!(
        "HB-cuts seeded {} attributes ({:?}), skipped {:?}, stopped on {:?}",
        advice.trace.seeds.len(),
        advice.trace.seeds,
        advice.trace.skipped,
        advice.trace.stop
    );
    for step in &advice.trace.steps {
        println!(
            "  compose {:?} × {:?}  (INDEP = {:.3}, {} pieces, {})",
            step.left_attrs,
            step.right_attrs,
            step.indep,
            step.depth,
            if step.accepted {
                "accepted"
            } else {
                "rejected → stop"
            }
        );
    }
    println!();
    for (i, r) in advice.ranked.iter().take(4).enumerate() {
        let rows = segment_rows(&sky, &r.segmentation, advice.context_size).expect("rows");
        let weights: Vec<f64> = rows.iter().map(|s| s.cover).collect();
        println!(
            "#{i} [{}] E={:.2} attrs={:?}",
            stacked_bar(&weights, 28),
            r.score.entropy,
            r.segmentation.attributes()
        );
        for row in &rows {
            println!("    {:>6} rows  {}", row.count, row.label);
        }
    }

    // Step 2: the best answer as a tree-map (§5.2 hierarchical display).
    let best = &advice.ranked[0];
    let rows = segment_rows(&sky, &best.segmentation, advice.context_size).expect("rows");
    let labels: Vec<String> = rows.iter().map(|r| r.label.clone()).collect();
    let weights: Vec<f64> = rows.iter().map(|r| r.cover).collect();
    println!("\n=== step 2: best segmentation as a tree-map ===");
    println!("{}", treemap(&labels, &weights, 100, 14));

    // Step 3: median vs quantile cuts on the skewed redshift column.
    println!("=== step 3: §5.2 quantile cuts on the skewed redshift column ===");
    let ex = Explorer::new(&sky, Config::default(), Query::wildcard(&["redshift"]))
        .expect("context non-empty");
    let ctx = ex.context().clone();
    let terciles = quantile_cut_query(&ex, &ctx, "redshift", 3)
        .expect("no store error")
        .expect("cuttable");
    println!("terciles of redshift (dense middle third made visible):");
    for q in &terciles {
        let n = ex.count(q).expect("countable");
        println!("    {:>6} objects  {}", n, q);
    }
    let seg = Segmentation::new(terciles);
    let report = seg
        .check_partition(&sky, ex.context_selection())
        .expect("checkable");
    println!("    partition check: {}", report.is_partition());

    // Step 4: drill into the quasars and look at the trace stopping.
    println!("\n=== step 4: drill into the quasar class ===");
    let quasars = advisor
        .advise_str("(class: {quasar}, magnitude: , redshift: )")
        .expect("context parses");
    println!("{} quasars; top suggestion:", quasars.context_size);
    if let Some(r) = quasars.ranked.first() {
        for q in r.segmentation.queries() {
            println!("    {q}");
        }
    }
    if quasars.trace.stop == Some(StopReason::IndependenceThreshold) {
        println!("    (magnitude and redshift are independent within the class — Charles stops composing)");
    }

    // Step 5: the diagnostics the paper left open — homogeneity (§3) and
    // surprise (§5.2) of the best answer, plus per-segment magnitude
    // distributions (sparklines over the context's value range).
    println!("\n=== step 5: homogeneity, surprise, and distributions ===");
    let ex_full = Explorer::new(
        &sky,
        Config::default(),
        Query::wildcard(&["class", "magnitude", "redshift", "survey", "dec"]),
    )
    .expect("context non-empty");
    let best_seg = &advice.ranked[0].segmentation;
    let h = homogeneity(&ex_full, best_seg).expect("scorable");
    let s = surprise(&ex_full, best_seg).expect("scorable");
    println!(
        "homogeneity gain = {:.3} (per attribute: {})",
        h.mean_gain,
        h.per_attribute
            .iter()
            .map(|(a, g)| format!("{a}={g:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("surprise (cover-weighted) = {:.3}", s.weighted);
    let sparks = segment_sparklines(
        &sky,
        best_seg.queries(),
        "magnitude",
        ex_full.context_selection(),
        24,
    )
    .expect("numeric attribute");
    println!("magnitude distribution per segment:");
    for (q, line) in best_seg.queries().iter().zip(&sparks) {
        let label = q.to_string();
        let short: String = label.chars().take(56).collect();
        println!("  {line}  {short}…");
    }
}
