//! Bring your own data: advise on a CSV file.
//!
//! ```sh
//! cargo run --example csv_advisor -- data.csv "(col_a: , col_b: )"
//! cargo run --example csv_advisor                 # built-in demo document
//! ```
//!
//! The CSV header must carry types: `name:type` per column, with types
//! `int | float | str | date | bool`. Empty fields are NULL. This is the
//! paper's deployment story in miniature — "the dataset … is managed with
//! any SQL-based DBMS": load an extract, let Charles segment it, and take
//! the emitted SQL back to the real database.

use charles::sdl::query_to_sql;
use charles::{read_csv_str, Advisor};

const DEMO: &str = "\
species:str,island:str,bill_len:float,flipper_len:int,body_mass:int
adelie,Torgersen,39.1,181,3750
adelie,Torgersen,39.5,186,3800
adelie,Biscoe,37.8,174,3400
adelie,Dream,36.4,191,3325
gentoo,Biscoe,46.1,211,4500
gentoo,Biscoe,50.0,230,5700
gentoo,Biscoe,48.7,210,4450
gentoo,Biscoe,47.3,222,5250
chinstrap,Dream,46.5,192,3500
chinstrap,Dream,50.0,196,3900
chinstrap,Dream,51.3,193,3650
chinstrap,Dream,45.4,188,3525
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (text, name) = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => (t, path.clone()),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => (DEMO.to_string(), "penguins (built-in demo)".to_string()),
    };
    let table = match read_csv_str("data", &text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("CSV error: {e}");
            eprintln!("expected a `name:type` header, e.g. `species:str,mass:int`");
            std::process::exit(1);
        }
    };
    println!(
        "loaded {name}: {} rows, schema {}\n",
        table.len(),
        table.schema()
    );

    // Context: second CLI argument, or all columns.
    let advisor = Advisor::new(&table);
    let advice = match args.get(1) {
        Some(sdl) => advisor.advise_str(sdl),
        None => {
            let names = table.schema().names();
            let all = format!(
                "({})",
                names
                    .iter()
                    .map(|n| format!("{n}: "))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            advisor.advise_str(&all)
        }
    };
    let advice = match advice {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot advise: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "context covers {} rows; {} segmentations proposed\n",
        advice.context_size,
        advice.ranked.len()
    );
    for (i, r) in advice.ranked.iter().take(3).enumerate() {
        println!(
            "#{i}  E={:.3}  breadth={}  pieces={}",
            r.score.entropy, r.score.breadth, r.score.depth
        );
        for q in r.segmentation.queries() {
            println!("    {q}");
        }
    }
    if let Some(best) = advice.ranked.first() {
        println!("\ntake it back to your DBMS:");
        for q in best.segmentation.queries().iter().take(4) {
            println!("  {}", query_to_sql(q, "your_table"));
        }
    }
}
