//! INDEP as an instrument: watching Proposition 1 in action.
//!
//! ```sh
//! cargo run --example dependency_explorer
//! ```
//!
//! The paper's Proposition 1 says the INDEP quotient equals 1 exactly when
//! two segmentations' partition variables are independent, and decreases
//! with dependence. This example sweeps the noise dial of the controlled
//! generator from functional (noise 0) to independent (noise 1) and prints
//! the measured INDEP at each step, then shows how the HB-cuts stopping
//! rule reacts: dependent pairs get composed, independent pairs stop the
//! loop immediately.

use charles::advisor::{hb_cuts, indep, Explorer};
use charles::datagen::{correlated_pair_table, DependencyKind};
use charles::{Config, Query, Segmentation};
use charles_core::cut_segmentation;

fn halves(ex: &Explorer<'_>, attr: &str) -> Segmentation {
    cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), attr)
        .expect("no store error")
        .expect("cuttable")
}

fn main() {
    println!("noise   INDEP(a,b)   HB-cuts outcome");
    println!("-----   ----------   ---------------");
    for step in 0..=10 {
        let noise = step as f64 / 10.0;
        let kind = match step {
            0 => DependencyKind::Functional,
            10 => DependencyKind::Independent,
            _ => DependencyKind::Noisy { noise },
        };
        let t = correlated_pair_table(40_000, 64, kind, 1000 + step);
        let ex =
            Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).expect("non-empty");
        let v = indep(&ex, &halves(&ex, "a"), &halves(&ex, "b")).expect("computable");
        let out = hb_cuts(&ex).expect("runs");
        let composed = out.trace.steps.iter().filter(|s| s.accepted).count();
        println!(
            "{noise:>5.1}   {v:>10.4}   {} answers, {} compositions, stop: {:?}",
            out.ranked.len(),
            composed,
            out.trace.stop.expect("loop ended")
        );
    }

    println!();
    println!("reading the column: INDEP = 0.5 is a functional dependency (the");
    println!("product collapses onto the diagonal), values near 1.0 mean the");
    println!("paper's 0.99 threshold fires and Charles refuses to compose.");
}
