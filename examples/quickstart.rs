//! Quickstart: ask Charles for advice on a small table.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a toy VOC-style relation, asks the advisor to segment it, and
//! prints the ranked answers with their metrics, exactly the loop the
//! paper's §2 describes: context in, ranked segmentations out, pick one,
//! drill deeper.

use charles::sdl::query_to_sql;
use charles::store::DataType;
use charles::{Advisor, Session, TableBuilder, Value};

fn main() {
    // 1. A relation. In real use this comes from CSV (`read_csv_str`) or
    //    a generator; here we write it out by hand so the output is easy
    //    to follow.
    let mut b = TableBuilder::new("boats");
    b.add_column("type_of_boat", DataType::Str)
        .add_column("tonnage", DataType::Int)
        .add_column("departure_harbour", DataType::Str);
    let rows = [
        ("fluit", 420, "Texel"),
        ("fluit", 480, "Texel"),
        ("fluit", 510, "Rammekens"),
        ("fluit", 550, "Rammekens"),
        ("jacht", 150, "Texel"),
        ("jacht", 210, "Goeree"),
        ("jacht", 260, "Goeree"),
        ("jacht", 320, "Texel"),
        ("spiegelretourschip", 800, "Wielingen"),
        ("spiegelretourschip", 900, "Wielingen"),
        ("spiegelretourschip", 1000, "Texel"),
        ("spiegelretourschip", 1150, "Wielingen"),
    ];
    for (ty, t, h) in rows {
        b.push_row(vec![Value::str(ty), Value::Int(t), Value::str(h)])
            .expect("row matches schema");
    }
    let table = b.finish();

    // 2. Ask for advice on the whole table, all three columns in scope.
    let advisor = Advisor::new(&table);
    let advice = advisor
        .advise_str("(type_of_boat: , tonnage: , departure_harbour: )")
        .expect("valid context");

    println!(
        "context: {} ({} rows)\n",
        advice.context, advice.context_size
    );
    println!("Charles proposes {} segmentations:\n", advice.ranked.len());
    for (i, r) in advice.ranked.iter().enumerate() {
        println!(
            "#{i}  entropy={:.3}  simplicity={}  breadth={}  pieces={}",
            r.score.entropy, r.score.simplicity, r.score.breadth, r.score.depth
        );
        for q in r.segmentation.queries() {
            println!("      {q}");
        }
        println!();
    }

    // 3. Every segment is a plain SQL query — Charles is a front-end for
    //    SQL systems.
    let best = &advice.ranked[0];
    println!("best answer as SQL:");
    for q in best.segmentation.queries() {
        println!("  {}", query_to_sql(q, "boats"));
    }

    // 4. Drill down: take the first segment of the best answer as the new
    //    context and ask again.
    let mut session = Session::new(&table);
    session
        .start("(type_of_boat: , tonnage: , departure_harbour: )")
        .expect("context parses");
    let deeper = session.drill(0, 0).expect("segment exists");
    println!(
        "\nafter drilling into the first segment ({} rows), Charles suggests:",
        deeper.context_size
    );
    if let Some(r) = deeper.ranked.first() {
        for q in r.segmentation.queries() {
            println!("  {q}");
        }
    } else {
        println!("  (segment too uniform to split further)");
    }
}
