//! Serve-layer smoke drive: boot the advisory server over a sharded VOC
//! dataset, then act as two analysts sharing one drill-down path over
//! real HTTP — start, inspect, drill, back, delete — and show that the
//! second analyst's identical context was answered from the shared
//! cache (one HB-cuts run, two sessions).
//!
//!     cargo run --release --example serve_client
//!
//! With `CHARLES_DATASET=/path/to/file.charles` the server boots onto
//! that saved dataset instead of generating one — the persistence
//! round trip (datagen → save → serve) that CI smoke-tests:
//!
//!     cargo run -p charles-datagen --bin datagen -- voc 2000 42 /tmp/voc.charles
//!     CHARLES_DATASET=/tmp/voc.charles cargo run --release --example serve_client

use charles::serve::http_request;
use charles::{DiskTable, ServeConfig, Server, ShardedTable};
use std::sync::Arc;

fn main() {
    // One shared backend: the VOC register split into row-range shards —
    // regenerated in memory by default, lazily loaded from a .charles
    // file when CHARLES_DATASET points at one.
    let table = match std::env::var("CHARLES_DATASET") {
        Ok(path) => {
            let disk = DiskTable::open(&path)
                .unwrap_or_else(|e| panic!("cannot open dataset {path:?}: {e}"));
            println!(
                "serving saved dataset {path} ({:?}, {} rows)",
                disk.name(),
                disk.len()
            );
            disk.to_table().expect("materialise dataset for sharding")
        }
        Err(_) => charles::voc_table(2_000, 42),
    };
    let sharded = ShardedTable::from_table(&table, 4);
    let backend: Arc<dyn charles::Backend> = Arc::new(sharded);

    let server =
        Server::bind("127.0.0.1:0", backend, ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("spawn accept loop");
    println!("advisory server listening on http://{addr}");

    let context = "(type_of_boat: , tonnage: , departure_harbour: )";

    // Analyst 1 starts a session.
    let (status, body) = http_request(addr, "POST", "/session", context).expect("POST /session");
    assert_eq!(status, 201, "unexpected response: {body}");
    let id = extract(&body, "\"session\":\"", "\"");
    println!("\nanalyst 1 opened session {id} on {context}");
    println!("  first advice: {}…", &body[..body.len().min(160)]);

    // Analyst 2 asks for the same population, conjuncts permuted — the
    // canonical cache key is identical, so no second HB-cuts run.
    let permuted = "(tonnage: , departure_harbour: , type_of_boat: )";
    let (status, body2) = http_request(addr, "POST", "/session", permuted).expect("POST /session");
    assert_eq!(status, 201, "unexpected response: {body2}");
    let id2 = extract(&body2, "\"session\":\"", "\"");
    println!("analyst 2 opened session {id2} on a permuted spelling of the same context");

    // Drill into the best answer's first segment, look around, back out.
    let (status, drilled) =
        http_request(addr, "POST", &format!("/session/{id}/drill"), "0 0").expect("drill");
    assert_eq!(status, 200, "drill failed: {drilled}");
    println!(
        "\nanalyst 1 drilled (0, 0): {}…",
        &drilled[..drilled.len().min(160)]
    );

    let (status, info) = http_request(addr, "GET", &format!("/session/{id}"), "").expect("GET");
    assert_eq!(status, 200);
    println!(
        "  breadcrumbs now: {}",
        extract(&info, "\"breadcrumbs\":[", "]")
    );

    let (status, _) = http_request(addr, "POST", &format!("/session/{id}/back"), "").expect("back");
    assert_eq!(status, 200);
    println!("  …and backed out to the root");

    // Both sessions close.
    for sid in [&id, &id2] {
        let (status, _) =
            http_request(addr, "DELETE", &format!("/session/{sid}"), "").expect("DELETE");
        assert_eq!(status, 204);
    }

    let (status, stats) = http_request(addr, "GET", "/cache/stats", "").expect("stats");
    assert_eq!(status, 200);
    println!("\nshared advice cache after both analysts: {stats}");
    println!("(two sessions on one context ⇒ \"runs\" stays at 1 for it: shared, not recomputed)");

    handle.shutdown();
    println!("\nserver drained and shut down cleanly");
}

/// Pull the first `prefix`…`suffix` span out of a JSON string — enough
/// for a demo printout without a decoder.
fn extract(body: &str, prefix: &str, suffix: &str) -> String {
    let Some(start) = body.find(prefix).map(|i| i + prefix.len()) else {
        return String::from("<missing>");
    };
    match body[start..].find(suffix) {
        Some(len) => body[start..start + len].to_string(),
        None => String::from("<missing>"),
    }
}
