//! The Figure 1 experience in a terminal: explore the VOC shipping data.
//!
//! ```sh
//! cargo run --example voc_explorer            # guided tour (no input)
//! cargo run --example voc_explorer -- -i      # interactive REPL
//! ```
//!
//! Interactive commands:
//!
//! * `<n>`        — show ranked answer n in the detail panel
//! * `d <n> <m>`  — drill into segment m of answer n (it becomes the context)
//! * `b`          — back up one level
//! * `sql <n>`    — print answer n as SQL statements
//! * `q`          — quit

use charles::viz::{context_panel, multi_level_pie, render_panel, PieLevel};
use charles::{voc_table, Session};
use charles_sdl::{eval, segmentation_to_sql};
use std::io::{BufRead, Write};

const CONTEXT: &str = "(type_of_boat: , tonnage: , departure_harbour: , cape_arrival: , built: )";

fn main() {
    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    let ships = voc_table(20_000, 1713);
    let mut session = Session::new(&ships);
    session.start(CONTEXT).expect("context parses");

    if interactive {
        repl(&ships, &mut session);
    } else {
        tour(&ships, &mut session);
    }
}

/// Non-interactive guided tour: show the panel, drill once, show again.
fn tour(ships: &charles::Table, session: &mut Session<'_>) {
    let advice = session.current().expect("started");
    println!("{}", context_panel(&advice.context));
    println!(
        "{}",
        render_panel(ships, advice, 0, 110).expect("panel renders")
    );

    // §5.2 hierarchical display: the best answer as a two-ring pie, the
    // inner ring grouping segments by their constraint on the first
    // composed attribute.
    let best = &advice.ranked[0].segmentation;
    if let Some(first_attr) = best.attributes().first().copied() {
        let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
        for q in best.queries() {
            let key = q
                .constraint(first_attr)
                .map(|c| c.to_string())
                .unwrap_or_default();
            let cover = eval::count(q, ships).unwrap_or(0) as f64;
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ws)) => ws.push(cover),
                None => groups.push((key, vec![cover])),
            }
        }
        let level = PieLevel {
            groups: groups.into_iter().map(|(_, ws)| ws).collect(),
        };
        println!("best answer as a multi-level pie (inner ring: {first_attr}):\n");
        for line in multi_level_pie(&level, 7).lines() {
            println!("   {line}");
        }
    }

    println!("→ drilling into segment 0 of the best answer …\n");
    let deeper = session.drill(0, 0).expect("drillable");
    println!("{}", context_panel(&deeper.context));
    println!(
        "{}",
        render_panel(ships, deeper, 0, 110).expect("panel renders")
    );
    println!("run with -i for the interactive version");
}

fn repl(ships: &charles::Table, session: &mut Session<'_>) {
    let stdin = std::io::stdin();
    let mut selected = 0usize;
    loop {
        let advice = session.current().expect("session started");
        println!("{}", context_panel(&advice.context));
        match render_panel(ships, advice, selected, 110) {
            Ok(panel) => println!("{panel}"),
            Err(e) => println!("render error: {e}"),
        }
        print!("charles[{}]> ", session.depth());
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["q"] | ["quit"] => break,
            ["b"] | ["back"] => {
                if session.back().is_none() {
                    println!("(already at the root context)");
                }
                selected = 0;
            }
            ["d", n, m] => match (n.parse::<usize>(), m.parse::<usize>()) {
                (Ok(n), Ok(m)) => match session.drill(n, m) {
                    Ok(_) => selected = 0,
                    Err(e) => println!("cannot drill: {e}"),
                },
                _ => println!("usage: d <answer> <segment>"),
            },
            ["sql", n] => {
                if let Ok(n) = n.parse::<usize>() {
                    if let Some(r) = advice.ranked.get(n) {
                        for stmt in segmentation_to_sql(&r.segmentation, "voc") {
                            println!("{stmt}");
                        }
                    } else {
                        println!("no answer #{n}");
                    }
                }
            }
            [n] => match n.parse::<usize>() {
                Ok(n) if n < advice.ranked.len() => selected = n,
                _ => println!("commands: <n> | d <n> <m> | b | sql <n> | q"),
            },
            _ => println!("commands: <n> | d <n> <m> | b | sql <n> | q"),
        }
    }
}
