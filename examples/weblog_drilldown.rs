//! Web-log triage: Charles as an ops analyst's first responder.
//!
//! ```sh
//! cargo run --example weblog_drilldown
//! ```
//!
//! The paper's intro motivates Charles with analysts grinding web logs.
//! This example plays out an incident-triage session: segment the whole
//! log, notice the error-dominated slice, drill into the 500s, and let
//! Charles reveal which section and country the slowness concentrates in.
//! It also compares the exact-median configuration against the §5.2
//! sampled-median configuration on the same context and reports the
//! agreement plus the operation counts.

use charles::{weblog_table, Advisor, Config, MedianStrategy, Session};

fn main() {
    let log = weblog_table(100_000, 404);
    println!("web log: {} requests\n", log.len());

    // Triage step 1: the whole log.
    let mut session = Session::new(&log);
    let advice = session
        .start("(section: , status: , latency_ms: , country: , hour: )")
        .expect("context parses");
    println!("=== whole-log summary ===");
    for (i, r) in advice.ranked.iter().take(3).enumerate() {
        println!(
            "#{i} E={:.2} attrs={:?}",
            r.score.entropy,
            r.segmentation.attributes()
        );
        for q in r.segmentation.queries().iter().take(6) {
            println!("    {q}");
        }
        if r.segmentation.depth() > 6 {
            println!("    … {} more pieces", r.segmentation.depth() - 6);
        }
    }

    // Triage step 2: drill into the server errors.
    let errors = Advisor::new(&log)
        .advise_str("(status: {500}, section: , latency_ms: , country: )")
        .expect("context parses");
    println!("\n=== the 500s ({} requests) ===", errors.context_size);
    for (i, r) in errors.ranked.iter().take(3).enumerate() {
        println!(
            "#{i} E={:.2} attrs={:?}",
            r.score.entropy,
            r.segmentation.attributes()
        );
        for q in r.segmentation.queries().iter().take(4) {
            println!("    {q}");
        }
    }

    // Step 3: exact vs sampled medians (§5.2) on the same context.
    println!("\n=== exact vs sampled medians ===");
    let context = "(latency_ms: , bytes: , hour: )";
    let exact_advisor = Advisor::new(&log);
    let exact = exact_advisor.advise_str(context).expect("parses");
    let sampled_advisor = Advisor::with_config(
        &log,
        Config::default().with_median(MedianStrategy::Sampled {
            size: 1024,
            seed: 7,
        }),
    );
    let sampled = sampled_advisor.advise_str(context).expect("parses");
    println!(
        "exact:   best E={:.3}, {} scans, {} medians",
        exact.ranked[0].score.entropy, exact.backend_ops.scans, exact.backend_ops.medians
    );
    println!(
        "sampled: best E={:.3}, {} scans, {} medians (reservoir of 1024)",
        sampled.ranked[0].score.entropy, sampled.backend_ops.scans, sampled.backend_ops.medians
    );
    let delta = (exact.ranked[0].score.entropy - sampled.ranked[0].score.entropy).abs();
    println!(
        "entropy difference of best answers: {delta:.4} — sampling {}",
        if delta < 0.1 {
            "preserves the answer quality"
        } else {
            "visibly changes the answers on this data"
        }
    );
}
