//! **Charles** — a big-data query advisor.
//!
//! A from-scratch Rust reproduction of Thibault Sellam & Martin Kersten,
//! *"Meet Charles, big data query advisor"*, CIDR 2013.
//!
//! Charles answers a query with queries: you give it a *context* (an SDL
//! conjunctive query over one relation — possibly the whole table) and it
//! returns ranked *segmentations*: sets of SDL queries that partition your
//! context into meaningful, preferably balanced pieces. Each answer both
//! summarises the data and hands you the exact query to drill into next.
//!
//! This crate is the facade: it re-exports the workspace layers —
//!
//! * [`store`] — the columnar OLAP substrate (plus a row-store baseline);
//! * [`sdl`] — the Segmentation Description Language;
//! * [`advisor`] — metrics, primitives, HB-cuts, ranking, sessions;
//! * [`serve`] — the concurrent HTTP advisory server with its shared
//!   cross-session advice cache;
//! * [`datagen`] — synthetic VOC / astronomy / weblog datasets;
//! * [`viz`] — terminal pie charts, tree-maps and the Figure 1 panel —
//!
//! and the most common types at the top level.
//!
//! ```
//! use charles::{Advisor, voc_table};
//!
//! let ships = voc_table(2_000, 42);
//! let advisor = Advisor::new(&ships);
//! let advice = advisor
//!     .advise_str("(type_of_boat: , tonnage: , departure_harbour: )")
//!     .unwrap();
//! for answer in advice.ranked.iter().take(3) {
//!     println!("E={:.2}\n{}\n", answer.score.entropy, answer.segmentation);
//! }
//! ```

pub use charles_core as advisor;
pub use charles_datagen as datagen;
pub use charles_sdl as sdl;
pub use charles_serve as serve;
pub use charles_store as store;
pub use charles_viz as viz;

pub use charles_core::{
    hb_cuts, Advice, AdviceCache, AdviceCacheStats, Advisor, Config, CoreError, CoreResult,
    Explorer, LazyGenerator, MedianStrategy, OwnedSession, Ranked, Score, Session,
};
pub use charles_datagen::{astro_table, sweep_table, voc_table, weblog_table};
pub use charles_sdl::{
    parse_query, parse_segmentation, Constraint, Predicate, Query, Segmentation,
};
pub use charles_serve::{ServeConfig, Server};
pub use charles_store::{
    read_csv_file, read_csv_str, write_csv_file, write_csv_string, write_table, Backend, DataType,
    DiskTable, RowTable, Schema, ShardedTable, Table, TableBuilder, Value,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // Just exercise a full stack call through the facade names.
        let t = crate::voc_table(200, 1);
        let advice = crate::Advisor::new(&t)
            .advise_str("(type_of_boat: , tonnage: )")
            .unwrap();
        assert!(!advice.ranked.is_empty());
    }
}
