//! Equivalence oracle for the admission-time static analyzer: on every
//! *satisfiable* context, the advisor's output with analysis enabled is
//! bitwise-identical to its output with analysis disabled — across the
//! `Table`, `ShardedTable` and `DiskTable` backends.
//!
//! This is the acceptance bar for the analysis stage: it may reject or
//! prune, but it must never *change* an answer. Duplicate-free contexts
//! flow through admission untouched (not even re-canonicalized), and
//! repeated-attribute conjunctions — which only the analyzer makes
//! advisable at all — must produce exactly the answer of their merged
//! spelling.

use charles::{voc_table, Advisor, Config, Table};
use charles_store::disk::write_table;
use charles_store::{Backend, DiskTable, ShardedTable};

const ROWS: usize = 1_203;

fn fixture() -> Table {
    voc_table(ROWS, 2026)
}

fn disk_fixture(t: &Table) -> DiskTable {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "charles-analysis-eq-{}-{}.charles",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    write_table(t, &path).expect("write .charles fixture");
    let disk = DiskTable::open(&path).expect("open .charles fixture");
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    disk
}

fn backends(t: &Table) -> Vec<(String, Box<dyn Backend>)> {
    vec![
        ("table".into(), Box::new(t.clone())),
        ("sharded-3".into(), Box::new(ShardedTable::from_table(t, 3))),
        ("disk".into(), Box::new(disk_fixture(t))),
    ]
}

/// Satisfiable contexts spanning the admission behaviours: wildcards,
/// constrained conjuncts, and (for the merged-duplicates comparison
/// below) no repeated attributes.
const CONTEXTS: [&str; 5] = [
    "(type_of_boat: , tonnage: )",
    "(type_of_boat: , tonnage: [200,900])",
    "(yard: {Amsterdam, Zeeland}, tonnage: , departure_harbour: )",
    "(tonnage: [0,5000], trip: , type_of_boat: {fluit})",
    "(departure_date: , tonnage: [100,1100], type_of_boat: )",
];

/// The deterministic portion of an advice, as comparable bytes
/// (`backend_ops`/`cache` are run diagnostics and excluded by design —
/// the analyzer's whole point is changing *those*).
fn advice_fingerprint(a: &charles_core::Advice) -> String {
    format!(
        "{:?}|{}|{:?}|{:?}",
        a.context, a.context_size, a.ranked, a.trace
    )
}

#[test]
fn analysis_on_equals_analysis_off_on_every_backend() {
    let t = fixture();
    for (name, backend) in backends(&t) {
        let with = Advisor::with_config(backend.as_ref(), Config::default().with_analysis(true));
        let without =
            Advisor::with_config(backend.as_ref(), Config::default().with_analysis(false));
        for ctx in CONTEXTS {
            let a = with.advise_str(ctx).expect(ctx);
            let b = without.advise_str(ctx).expect(ctx);
            assert_eq!(
                advice_fingerprint(&a),
                advice_fingerprint(&b),
                "analysis changed the answer for {ctx} on {name}"
            );
        }
    }
}

#[test]
fn merged_duplicates_equal_their_plain_spelling_on_every_backend() {
    let t = fixture();
    // (redundant spelling, equivalent plain spelling) pairs; the plain
    // side is advised pre-canonicalized, since merging canonicalizes.
    let pairs = [
        (
            "(tonnage: [0,900], tonnage: [200,5000], type_of_boat: )",
            "(tonnage: [200,900], type_of_boat: )",
        ),
        (
            "(type_of_boat: {fluit, jacht}, type_of_boat: {jacht, pinas}, tonnage: )",
            "(tonnage: , type_of_boat: {jacht})",
        ),
        (
            "(trip: , trip: [1,3], tonnage: )",
            "(tonnage: , trip: [1,3])",
        ),
    ];
    for (name, backend) in backends(&t) {
        let advisor = Advisor::new(backend.as_ref());
        for (redundant, plain) in pairs {
            let merged = advisor.advise_str(redundant).expect(redundant);
            let direct = advisor.advise_str(plain).expect(plain);
            assert_eq!(
                advice_fingerprint(&merged),
                advice_fingerprint(&direct),
                "{redundant} did not collapse to {plain} on {name}"
            );
        }
    }
}

#[test]
fn pruning_is_consistent_across_backends() {
    let t = fixture();
    for (name, backend) in backends(&t) {
        let advisor = Advisor::new(backend.as_ref());
        let err = advisor
            .advise_str("(tonnage: [0,100], tonnage: [200,300], type_of_boat: )")
            .expect_err("provably empty");
        assert_eq!(
            err,
            charles_core::CoreError::UnsatisfiableContext,
            "on {name}"
        );
        assert_eq!(
            backend.stats(),
            charles_store::BackendStats::default(),
            "pruning read rows on {name}"
        );
    }
}
