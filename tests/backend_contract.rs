//! The `Backend` trait is the portability seam ("Charles is developed as
//! a front-end for SQL systems"). This suite proves three things:
//!
//! 1. the trait is implementable by third parties — a wrapper backend
//!    built *outside* the store crate drives the full advisor;
//! 2. failures propagate as `Err`, never as panics — a fault-injecting
//!    backend fails each operation class in turn and the advisor must
//!    surface every failure gracefully;
//! 3. every shipped backend honours the same contract — the
//!    [`contract_harness`] module runs each Backend obligation over
//!    `Table`, `RowTable` and `ShardedTable` (shard counts {1, 3, 7},
//!    plus an optional `CHARLES_SHARDS` env-driven count for CI smoke
//!    runs), with shard boundaries deliberately unaligned to 64-bit
//!    bitmap words. Two storage-layout axes ride the same matrix: the
//!    `mmap` feature adds a memory-mapped `DiskTable` row, and the
//!    selection-bitmap layout tests flip the process-wide compressed
//!    override to demand bitwise-identical advisor output under dense
//!    and Roaring-container selection bitmaps.

use charles::advisor::Explorer;
use charles::{voc_table, Advisor, Config};
use charles_store::{
    Backend, BackendStats, Bitmap, FrequencyTable, Schema, StoreError, StorePredicate, StoreResult,
    Value,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A delegating backend with a fuse: after `budget` operations, every
/// further call fails with a synthetic error. `budget = usize::MAX`
/// disables the fuse (pure delegation).
struct FusedBackend<'a> {
    inner: &'a charles::Table,
    budget: AtomicUsize,
}

impl<'a> FusedBackend<'a> {
    fn new(inner: &'a charles::Table, budget: usize) -> Self {
        FusedBackend {
            inner,
            budget: AtomicUsize::new(budget),
        }
    }

    fn spend(&self) -> StoreResult<()> {
        // Compare-and-swap loop: the advisor may call concurrently under
        // the `parallel` feature, and the fuse must never double-spend.
        let mut left = self.budget.load(Ordering::Relaxed);
        loop {
            if left == 0 {
                return Err(StoreError::Parse("injected backend failure".into()));
            }
            if left == usize::MAX {
                return Ok(());
            }
            match self.budget.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => left = now,
            }
        }
    }
}

impl Backend for FusedBackend<'_> {
    fn row_count(&self) -> usize {
        self.inner.row_count()
    }
    fn schema(&self) -> &Schema {
        Backend::schema(self.inner)
    }
    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap> {
        self.spend()?;
        self.inner.eval(pred)
    }
    fn not_null(&self, column: &str) -> StoreResult<Bitmap> {
        self.spend()?;
        self.inner.not_null(column)
    }
    fn count(&self, pred: &StorePredicate) -> StoreResult<usize> {
        self.spend()?;
        self.inner.count(pred)
    }
    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.median(column, sel)
    }
    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.sampled_median(column, sel, sample_size, seed)
    }
    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.quantile(column, sel, q)
    }
    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>> {
        self.spend()?;
        self.inner.min_max(column, sel)
    }
    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.next_above(column, sel, v)
    }
    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>> {
        self.spend()?;
        self.inner.mean_and_var(column, sel)
    }
    fn frequencies(
        &self,
        column: &str,
        sel: &Bitmap,
    ) -> StoreResult<(FrequencyTable, Vec<String>)> {
        self.spend()?;
        self.inner.frequencies(column, sel)
    }
    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize> {
        self.spend()?;
        self.inner.distinct_count(column, sel)
    }
    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

const CONTEXT: &str = "(type_of_boat: , tonnage: , built: )";

#[test]
fn third_party_backend_drives_the_full_advisor() {
    let table = voc_table(3_000, 51);
    let wrapper = FusedBackend::new(&table, usize::MAX);
    let advice = Advisor::new(&wrapper).advise_str(CONTEXT).unwrap();
    assert!(!advice.ranked.is_empty());
    // Identical results to the direct table.
    let direct = Advisor::new(&table).advise_str(CONTEXT).unwrap();
    assert_eq!(advice.ranked.len(), direct.ranked.len());
    for (a, b) in advice.ranked.iter().zip(&direct.ranked) {
        assert_eq!(a.segmentation.to_string(), b.segmentation.to_string());
    }
}

#[test]
fn every_failure_point_surfaces_as_err_not_panic() {
    // Let the advisor fail at operation 0, 1, 2, … until a budget is
    // large enough to succeed. Every early stop must be a clean Err.
    let table = voc_table(1_000, 52);
    let mut succeeded = false;
    for budget in 0..500 {
        let wrapper = FusedBackend::new(&table, budget);
        match Advisor::new(&wrapper).advise_str(CONTEXT) {
            Ok(advice) => {
                assert!(!advice.ranked.is_empty());
                succeeded = true;
                break;
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("injected backend failure"),
                    "unexpected error at budget {budget}: {msg}"
                );
            }
        }
    }
    assert!(succeeded, "advisor never succeeded within the op budget");
}

#[test]
fn explorer_construction_fails_cleanly_on_dead_backend() {
    let table = voc_table(100, 53);
    let dead = FusedBackend::new(&table, 0);
    let ctx = charles::parse_query(CONTEXT, Backend::schema(&dead)).unwrap();
    let err = Explorer::new(&dead, Config::default(), ctx);
    assert!(err.is_err());
}

/// Parameterized contract harness: every Backend obligation, every
/// shipped backend.
mod contract_harness {
    use charles::{voc_table, Advisor, ShardedTable, Table};
    use charles_store::disk::write_table;
    use charles_store::{Backend, Bitmap, DiskTable, RowTable, StorePredicate, Value};

    /// Odd row count so that the even row-range split puts shard
    /// boundaries off 64-bit word alignment (1543/3 → 514, 1028;
    /// 1543/7 → 220, 440, …; none are multiples of 64).
    const ROWS: usize = 1_543;

    /// Shard counts under test: the fixed {1, 3, 7} matrix by default. A
    /// `CHARLES_SHARDS=n` env var *replaces* the matrix with that single
    /// count — the CI smoke run uses it (together with
    /// `CHARLES_NUM_THREADS` to force workers on single-core runners) to
    /// drive one genuinely shard-parallel pass without re-running the
    /// whole matrix.
    fn shard_counts() -> Vec<usize> {
        if let Some(n) = std::env::var("CHARLES_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return vec![n];
        }
        vec![1, 3, 7]
    }

    fn fixture() -> Table {
        voc_table(ROWS, 2026)
    }

    /// Write the fixture to a unique `.charles` temp file and open it
    /// lazily. On unix the path is unlinked immediately (the open handle
    /// keeps the data alive), so tests never leak files.
    fn disk_fixture(t: &Table) -> DiskTable {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "charles-contract-{}-{}.charles",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        write_table(t, &path).expect("write .charles fixture");
        let disk = DiskTable::open(&path).expect("open .charles fixture");
        #[cfg(unix)]
        let _ = std::fs::remove_file(&path);
        disk
    }

    /// Like [`disk_fixture`], but memory-mapped: segment fetches are
    /// slices of one read-only mapping instead of positioned reads.
    #[cfg(feature = "mmap")]
    fn mmap_fixture(t: &Table) -> DiskTable {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "charles-contract-mmap-{}-{}.charles",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        write_table(t, &path).expect("write .charles fixture");
        let disk = DiskTable::open_mmap(&path).expect("map .charles fixture");
        assert!(disk.is_mapped());
        #[cfg(unix)]
        let _ = std::fs::remove_file(&path);
        disk
    }

    /// All backends under test, with the reference `Table` first. The
    /// disk-backed entries prove the persistence tentpole: a lazily
    /// loaded `.charles` file, and a `ShardedTable` over its
    /// materialisation, honour the identical contract.
    fn backends(t: &Table) -> Vec<(String, Box<dyn Backend>)> {
        let mut out: Vec<(String, Box<dyn Backend>)> = vec![
            ("table".into(), Box::new(t.clone())),
            ("rowstore".into(), Box::new(RowTable::from_table(t))),
            ("disk".into(), Box::new(disk_fixture(t))),
        ];
        #[cfg(feature = "mmap")]
        out.push(("disk-mmap".into(), Box::new(mmap_fixture(t))));
        for n in shard_counts() {
            out.push((
                format!("sharded-{n}"),
                Box::new(ShardedTable::from_table(t, n)),
            ));
            out.push((
                format!("disk-sharded-{n}"),
                Box::new(ShardedTable::from_table(
                    &disk_fixture(t).to_table().expect("materialise disk table"),
                    n,
                )),
            ));
        }
        out
    }

    /// Predicates exercising every shape: trivial, range, set,
    /// conjunction, and an empty-result conjunction.
    fn preds() -> Vec<StorePredicate> {
        vec![
            StorePredicate::True,
            StorePredicate::range("tonnage", Value::Int(300), Value::Int(900), true),
            StorePredicate::range("tonnage", Value::Int(300), Value::Int(900), false),
            StorePredicate::set(
                "type_of_boat",
                vec![Value::str("fluit"), Value::str("jacht")],
            ),
            StorePredicate::and(vec![
                StorePredicate::range("tonnage", Value::Int(200), Value::Int(1100), true),
                StorePredicate::set("type_of_boat", vec![Value::str("fluit")]),
            ]),
            StorePredicate::and(vec![
                StorePredicate::range("tonnage", Value::Int(0), Value::Int(1), true),
                StorePredicate::range("tonnage", Value::Int(100_000), Value::Int(200_000), true),
            ]),
        ]
    }

    #[test]
    fn fixture_shard_boundaries_are_word_unaligned() {
        let t = fixture();
        for n in [3usize, 7] {
            let s = ShardedTable::from_table(&t, n);
            let unaligned = (1..s.shard_count())
                .map(|k| s.shard_bounds(k).0)
                .filter(|start| start % 64 != 0)
                .count();
            assert!(unaligned > 0, "fixture must cross word boundaries (n={n})");
        }
    }

    #[test]
    fn obligation_eval_count_not_null_agree() {
        let t = fixture();
        for (name, b) in backends(&t) {
            assert_eq!(b.row_count(), t.len(), "{name}");
            assert_eq!(b.schema().names(), Backend::schema(&t).names(), "{name}");
            for pred in preds() {
                let reference = t.eval(&pred).unwrap();
                assert_eq!(b.eval(&pred).unwrap(), reference, "{name}: eval {pred:?}");
                assert_eq!(
                    b.count(&pred).unwrap(),
                    reference.count_ones(),
                    "{name}: count {pred:?}"
                );
                // Determinism: evaluating twice yields the same bitmap.
                assert_eq!(b.eval(&pred).unwrap(), reference, "{name}: eval redo");
            }
            for col in ["tonnage", "type_of_boat", "built"] {
                assert_eq!(
                    b.not_null(col).unwrap(),
                    t.not_null(col).unwrap(),
                    "{name}: not_null {col}"
                );
            }
        }
    }

    #[test]
    fn obligation_medians_and_quantiles_agree() {
        let t = fixture();
        let sels: Vec<Bitmap> = preds().iter().map(|p| t.eval(p).unwrap()).collect();
        for (name, b) in backends(&t) {
            for (i, sel) in sels.iter().enumerate() {
                let want = t.median("tonnage", sel).unwrap();
                let got = b.median("tonnage", sel).unwrap();
                // The row store reports all statistics as floats; the
                // numeric view must agree exactly for every backend …
                assert_eq!(
                    got.as_ref().and_then(Value::as_f64),
                    want.as_ref().and_then(Value::as_f64),
                    "{name}: median over pred {i}"
                );
                // … and the sharded and disk backends must fold back
                // into the column's value space bit-for-bit like the
                // table.
                if name.starts_with("sharded") || name.starts_with("disk") {
                    assert_eq!(got, want, "{name}: median value space, pred {i}");
                }
                for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                    let want = t.quantile("tonnage", sel, q).unwrap();
                    let got = b.quantile("tonnage", sel, q).unwrap();
                    assert_eq!(
                        got.as_ref().and_then(Value::as_f64),
                        want.as_ref().and_then(Value::as_f64),
                        "{name}: q={q} pred {i}"
                    );
                    if name.starts_with("sharded") || name.starts_with("disk") {
                        assert_eq!(got, want, "{name}: quantile value space q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn obligation_sampled_median_deterministic_and_sane() {
        let t = fixture();
        let sel = t.all_rows();
        let (lo, hi) = t.min_max("tonnage", &sel).unwrap().unwrap();
        let (lo, hi) = (lo.as_f64().unwrap(), hi.as_f64().unwrap());
        for (name, b) in backends(&t) {
            for seed in [0u64, 7, 42] {
                let a = b.sampled_median("tonnage", &sel, 101, seed).unwrap();
                let again = b.sampled_median("tonnage", &sel, 101, seed).unwrap();
                assert_eq!(a, again, "{name}: fixed seed {seed} must be deterministic");
                let v = a.unwrap().as_f64().unwrap();
                assert!(
                    (lo..=hi).contains(&v),
                    "{name}: sampled median {v} outside [{lo}, {hi}]"
                );
            }
            // Sample ≥ population degenerates to the exact median.
            assert_eq!(
                b.sampled_median("tonnage", &sel, ROWS * 2, 3)
                    .unwrap()
                    .and_then(|v| v.as_f64()),
                t.median("tonnage", &sel).unwrap().and_then(|v| v.as_f64()),
                "{name}: full sample = exact median"
            );
        }
    }

    #[test]
    fn obligation_aggregates_agree() {
        let t = fixture();
        let sel = t
            .eval(&StorePredicate::range(
                "tonnage",
                Value::Int(200),
                Value::Int(1100),
                true,
            ))
            .unwrap();
        for (name, b) in backends(&t) {
            let (wm, wv) = t.mean_and_var("tonnage", &sel).unwrap().unwrap();
            let (gm, gv) = b.mean_and_var("tonnage", &sel).unwrap().unwrap();
            assert!((wm - gm).abs() < 1e-9 && (wv - gv).abs() < 1e-6, "{name}");
            if name.starts_with("sharded") || name.starts_with("disk") {
                assert_eq!((gm.to_bits(), gv.to_bits()), (wm.to_bits(), wv.to_bits()));
            }
            assert_eq!(
                b.min_max("tonnage", &sel).unwrap(),
                t.min_max("tonnage", &sel).unwrap(),
                "{name}: min_max"
            );
            assert_eq!(
                b.next_above("tonnage", &sel, &Value::Int(400)).unwrap(),
                t.next_above("tonnage", &sel, &Value::Int(400)).unwrap(),
                "{name}: next_above"
            );
            assert_eq!(
                b.distinct_count("tonnage", &sel).unwrap(),
                t.distinct_count("tonnage", &sel).unwrap(),
                "{name}: distinct"
            );
            // Frequencies compare as string→count maps: the row store
            // builds its dictionary in selection order, so codes differ.
            let (wf, wd) = t.frequencies("type_of_boat", &sel).unwrap();
            let (gf, gd) = b.frequencies("type_of_boat", &sel).unwrap();
            let to_map = |ft: &charles_store::FrequencyTable, dict: &[String]| {
                let mut m: Vec<(String, usize)> = ft
                    .entries()
                    .iter()
                    .map(|&(code, n)| (dict[code as usize].clone(), n))
                    .collect();
                m.sort();
                m
            };
            assert_eq!(to_map(&gf, &gd), to_map(&wf, &wd), "{name}: frequencies");
        }
    }

    #[test]
    fn advisor_output_bitwise_identical_table_vs_sharded() {
        let t = fixture();
        let context = "(type_of_boat: , tonnage: , departure_harbour: )";
        let reference: Vec<(String, u64)> = Advisor::new(&t)
            .advise_str(context)
            .unwrap()
            .ranked
            .iter()
            .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
            .collect();
        assert!(!reference.is_empty());
        for n in shard_counts() {
            let sharded = ShardedTable::from_table(&t, n);
            let got: Vec<(String, u64)> = Advisor::new(&sharded)
                .advise_str(context)
                .unwrap()
                .ranked
                .iter()
                .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
                .collect();
            assert_eq!(got, reference, "advisor output diverged at {n} shards");
        }
    }

    #[test]
    fn advisor_output_bitwise_identical_table_vs_disk() {
        // The persistence round trip the tentpole promises: write the
        // fixture out, advise over the lazily loaded file (and over a
        // sharded split of its materialisation) and demand the exact
        // same ranked answers, entropies bit-for-bit.
        let t = fixture();
        let context = "(type_of_boat: , tonnage: , departure_harbour: )";
        let reference: Vec<(String, u64)> = Advisor::new(&t)
            .advise_str(context)
            .unwrap()
            .ranked
            .iter()
            .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
            .collect();
        assert!(!reference.is_empty());
        let disk = disk_fixture(&t);
        let got: Vec<(String, u64)> = Advisor::new(&disk)
            .advise_str(context)
            .unwrap()
            .ranked
            .iter()
            .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
            .collect();
        assert_eq!(got, reference, "advisor output diverged on DiskTable");
        // Only the three context attributes (plus any the advisor
        // touches) should have been materialised — the fixture has 9.
        assert!(
            disk.columns_loaded() < 9,
            "lazy loading defeated: {} of 9 columns materialised",
            disk.columns_loaded()
        );
        for n in shard_counts() {
            let sharded = ShardedTable::from_table(&disk.to_table().unwrap(), n);
            let got: Vec<(String, u64)> = Advisor::new(&sharded)
                .advise_str(context)
                .unwrap()
                .ranked
                .iter()
                .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
                .collect();
            assert_eq!(
                got, reference,
                "advisor output diverged on disk→sharded at {n} shards"
            );
        }
    }

    /// The advisor's ranked output — segmentations plus entropy bits —
    /// for one backend. This is the bitwise fingerprint the layout
    /// matrix compares.
    fn ranked_fingerprint(b: &dyn Backend) -> Vec<(String, u64)> {
        let context = "(type_of_boat: , tonnage: , departure_harbour: )";
        Advisor::new(b)
            .advise_str(context)
            .unwrap()
            .ranked
            .iter()
            .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
            .collect()
    }

    /// Run `f` with the process-wide selection-bitmap layout pinned.
    /// The override is global, so flips are serialized behind a mutex
    /// and always restored (even on panic) to keep the rest of the
    /// binary's tests on the build's default layout.
    fn with_bitmap_layout<T>(compressed: bool, f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static LAYOUT: Mutex<()> = Mutex::new(());
        let _guard = LAYOUT.lock().unwrap_or_else(|p| p.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                charles_store::set_compressed_selections(None);
            }
        }
        let _restore = Restore;
        charles_store::set_compressed_selections(Some(compressed));
        f()
    }

    /// The compressed-bitmap row of the matrix: every backend must
    /// produce bitwise-identical advisor output whether its selection
    /// bitmaps are dense words or Roaring containers.
    #[test]
    fn advisor_output_bitwise_identical_dense_vs_compressed_bitmaps() {
        let t = fixture();
        let dense: Vec<(String, Vec<(String, u64)>)> = with_bitmap_layout(false, || {
            backends(&t)
                .into_iter()
                .map(|(name, b)| (name, ranked_fingerprint(b.as_ref())))
                .collect()
        });
        assert!(!dense.is_empty() && dense.iter().all(|(_, r)| !r.is_empty()));
        let compressed: Vec<(String, Vec<(String, u64)>)> = with_bitmap_layout(true, || {
            backends(&t)
                .into_iter()
                .map(|(name, b)| (name, ranked_fingerprint(b.as_ref())))
                .collect()
        });
        for ((dn, dr), (cn, cr)) in dense.iter().zip(&compressed) {
            assert_eq!(dn, cn, "backend matrix drifted between runs");
            assert_eq!(
                dr, cr,
                "advisor output diverged on {dn} under compressed bitmaps"
            );
        }
    }

    /// The mmap row of the matrix, stated directly: advising over the
    /// mapped file is bitwise identical to the in-memory table and the
    /// `pread` DiskTable — under both selection-bitmap layouts.
    #[cfg(feature = "mmap")]
    #[test]
    fn advisor_output_bitwise_identical_table_vs_mmap() {
        let t = fixture();
        for compressed in [false, true] {
            let (reference, pread, mapped) = with_bitmap_layout(compressed, || {
                (
                    ranked_fingerprint(&t),
                    ranked_fingerprint(&disk_fixture(&t)),
                    ranked_fingerprint(&mmap_fixture(&t)),
                )
            });
            assert!(!reference.is_empty());
            assert_eq!(pread, reference, "pread drifted (compressed={compressed})");
            assert_eq!(
                mapped, reference,
                "advisor output diverged on mmap (compressed={compressed})"
            );
        }
    }
}

#[test]
fn homogeneity_and_surprise_propagate_backend_errors() {
    // Budget tuned so the advisor succeeds but the (backend-hungry)
    // diagnostics later run out — they must return Err, not panic.
    let table = voc_table(1_000, 54);
    let probe = FusedBackend::new(&table, usize::MAX);
    let ctx = charles::parse_query(CONTEXT, Backend::schema(&probe)).unwrap();
    let ex = Explorer::new(&probe, Config::default(), ctx.clone()).unwrap();
    let out = charles::hb_cuts(&ex).unwrap();
    let best = out.ranked[0].segmentation.clone();

    // Re-run with a budget generous enough for HB-cuts to complete
    // (the caches absorb most calls; 512 has ample headroom), then kill
    // the fuse before the diagnostics run.
    let ops_for_advise = 512;
    let fused = FusedBackend::new(&table, ops_for_advise);
    let ex = Explorer::new(&fused, Config::default(), ctx).unwrap();
    let _ = charles::hb_cuts(&ex).unwrap();
    fused.budget.store(0, Ordering::Relaxed); // kill the backend now
                                              // Cached selections may still satisfy some calls; fresh backend work
                                              // must error.
    let h = charles::advisor::homogeneity(&ex, &best);
    let s = charles::advisor::surprise(&ex, &best);
    assert!(
        h.is_err() || s.is_err(),
        "diagnostics ignored a dead backend"
    );
}
