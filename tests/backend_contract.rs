//! The `Backend` trait is the portability seam ("Charles is developed as
//! a front-end for SQL systems"). This suite proves two things:
//!
//! 1. the trait is implementable by third parties — a wrapper backend
//!    built *outside* the store crate drives the full advisor;
//! 2. failures propagate as `Err`, never as panics — a fault-injecting
//!    backend fails each operation class in turn and the advisor must
//!    surface every failure gracefully.

use charles::advisor::Explorer;
use charles::{voc_table, Advisor, Config};
use charles_store::{
    Backend, BackendStats, Bitmap, FrequencyTable, Schema, StoreError, StorePredicate, StoreResult,
    Value,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A delegating backend with a fuse: after `budget` operations, every
/// further call fails with a synthetic error. `budget = usize::MAX`
/// disables the fuse (pure delegation).
struct FusedBackend<'a> {
    inner: &'a charles::Table,
    budget: AtomicUsize,
}

impl<'a> FusedBackend<'a> {
    fn new(inner: &'a charles::Table, budget: usize) -> Self {
        FusedBackend {
            inner,
            budget: AtomicUsize::new(budget),
        }
    }

    fn spend(&self) -> StoreResult<()> {
        // Compare-and-swap loop: the advisor may call concurrently under
        // the `parallel` feature, and the fuse must never double-spend.
        let mut left = self.budget.load(Ordering::Relaxed);
        loop {
            if left == 0 {
                return Err(StoreError::Parse("injected backend failure".into()));
            }
            if left == usize::MAX {
                return Ok(());
            }
            match self.budget.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => left = now,
            }
        }
    }
}

impl Backend for FusedBackend<'_> {
    fn row_count(&self) -> usize {
        self.inner.row_count()
    }
    fn schema(&self) -> &Schema {
        Backend::schema(self.inner)
    }
    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap> {
        self.spend()?;
        self.inner.eval(pred)
    }
    fn not_null(&self, column: &str) -> StoreResult<Bitmap> {
        self.spend()?;
        self.inner.not_null(column)
    }
    fn count(&self, pred: &StorePredicate) -> StoreResult<usize> {
        self.spend()?;
        self.inner.count(pred)
    }
    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.median(column, sel)
    }
    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.sampled_median(column, sel, sample_size, seed)
    }
    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.quantile(column, sel, q)
    }
    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>> {
        self.spend()?;
        self.inner.min_max(column, sel)
    }
    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>> {
        self.spend()?;
        self.inner.next_above(column, sel, v)
    }
    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>> {
        self.spend()?;
        self.inner.mean_and_var(column, sel)
    }
    fn frequencies(
        &self,
        column: &str,
        sel: &Bitmap,
    ) -> StoreResult<(FrequencyTable, Vec<String>)> {
        self.spend()?;
        self.inner.frequencies(column, sel)
    }
    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize> {
        self.spend()?;
        self.inner.distinct_count(column, sel)
    }
    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

const CONTEXT: &str = "(type_of_boat: , tonnage: , built: )";

#[test]
fn third_party_backend_drives_the_full_advisor() {
    let table = voc_table(3_000, 51);
    let wrapper = FusedBackend::new(&table, usize::MAX);
    let advice = Advisor::new(&wrapper).advise_str(CONTEXT).unwrap();
    assert!(!advice.ranked.is_empty());
    // Identical results to the direct table.
    let direct = Advisor::new(&table).advise_str(CONTEXT).unwrap();
    assert_eq!(advice.ranked.len(), direct.ranked.len());
    for (a, b) in advice.ranked.iter().zip(&direct.ranked) {
        assert_eq!(a.segmentation.to_string(), b.segmentation.to_string());
    }
}

#[test]
fn every_failure_point_surfaces_as_err_not_panic() {
    // Let the advisor fail at operation 0, 1, 2, … until a budget is
    // large enough to succeed. Every early stop must be a clean Err.
    let table = voc_table(1_000, 52);
    let mut succeeded = false;
    for budget in 0..500 {
        let wrapper = FusedBackend::new(&table, budget);
        match Advisor::new(&wrapper).advise_str(CONTEXT) {
            Ok(advice) => {
                assert!(!advice.ranked.is_empty());
                succeeded = true;
                break;
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("injected backend failure"),
                    "unexpected error at budget {budget}: {msg}"
                );
            }
        }
    }
    assert!(succeeded, "advisor never succeeded within the op budget");
}

#[test]
fn explorer_construction_fails_cleanly_on_dead_backend() {
    let table = voc_table(100, 53);
    let dead = FusedBackend::new(&table, 0);
    let ctx = charles::parse_query(CONTEXT, Backend::schema(&dead)).unwrap();
    let err = Explorer::new(&dead, Config::default(), ctx);
    assert!(err.is_err());
}

#[test]
fn homogeneity_and_surprise_propagate_backend_errors() {
    // Budget tuned so the advisor succeeds but the (backend-hungry)
    // diagnostics later run out — they must return Err, not panic.
    let table = voc_table(1_000, 54);
    let probe = FusedBackend::new(&table, usize::MAX);
    let ctx = charles::parse_query(CONTEXT, Backend::schema(&probe)).unwrap();
    let ex = Explorer::new(&probe, Config::default(), ctx.clone()).unwrap();
    let out = charles::hb_cuts(&ex).unwrap();
    let best = out.ranked[0].segmentation.clone();

    // Re-run with a budget generous enough for HB-cuts to complete
    // (the caches absorb most calls; 512 has ample headroom), then kill
    // the fuse before the diagnostics run.
    let ops_for_advise = 512;
    let fused = FusedBackend::new(&table, ops_for_advise);
    let ex = Explorer::new(&fused, Config::default(), ctx).unwrap();
    let _ = charles::hb_cuts(&ex).unwrap();
    fused.budget.store(0, Ordering::Relaxed); // kill the backend now
                                              // Cached selections may still satisfy some calls; fresh backend work
                                              // must error.
    let h = charles::advisor::homogeneity(&ex, &best);
    let s = charles::advisor::surprise(&ex, &best);
    assert!(
        h.is_err() || s.is_err(),
        "diagnostics ignored a dead backend"
    );
}
