//! End-to-end persistence: generate → save → load → advise, pinned.
//!
//! The tentpole's promise is that a dataset written to a `.charles`
//! file and served back through [`DiskTable`] is indistinguishable from
//! the in-memory table it came from — the advisor's ranked answers,
//! entropies and traces are **byte-identical**, whether the file backs
//! a plain backend, a sharded split, or an HTTP serving session.

use charles::serve::http_request;
use charles::{
    voc_table, write_table, Advisor, Backend, DiskTable, ServeConfig, Server, ShardedTable,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "charles-persist-{tag}-{}-{}.charles",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

const CONTEXT: &str = "(type_of_boat: , tonnage: , departure_harbour: )";

/// Render advice to its stable comparison form: segmentations plus
/// entropy bits.
fn fingerprint(advice: &charles::Advice) -> Vec<(String, u64)> {
    advice
        .ranked
        .iter()
        .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
        .collect()
}

#[test]
fn generate_save_load_advise_round_trip() {
    let table = voc_table(4_000, 77);
    let path = tmp_path("advise");
    write_table(&table, &path).unwrap();

    let reference = Advisor::new(&table).advise_str(CONTEXT).unwrap();
    assert!(!reference.ranked.is_empty());

    // Plain disk backend.
    let disk = DiskTable::open(&path).unwrap();
    let from_disk = Advisor::new(&disk).advise_str(CONTEXT).unwrap();
    assert_eq!(fingerprint(&from_disk), fingerprint(&reference));

    // Re-opened handle (fresh lazy state) → same again.
    let disk2 = DiskTable::open(&path).unwrap();
    let again = Advisor::new(&disk2).advise_str(CONTEXT).unwrap();
    assert_eq!(fingerprint(&again), fingerprint(&reference));

    // Sharded over the materialised file.
    let sharded = ShardedTable::from_table(&disk.to_table().unwrap(), 5);
    let from_sharded = Advisor::new(&sharded).advise_str(CONTEXT).unwrap();
    assert_eq!(fingerprint(&from_sharded), fingerprint(&reference));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn server_boots_from_a_saved_file() {
    // The serving wire-up: a server whose backend is a lazily loaded
    // .charles file answers sessions exactly like one over the original
    // table.
    let table = voc_table(2_000, 78);
    let path = tmp_path("serve");
    write_table(&table, &path).unwrap();

    let disk: Arc<dyn Backend> = Arc::new(DiskTable::open(&path).unwrap());
    let server = Server::bind("127.0.0.1:0", disk, ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let (status, body) = http_request(addr, "POST", "/session", CONTEXT).unwrap();
    assert_eq!(status, 201, "{body}");

    // The advice payload served from disk is byte-identical to the
    // direct advisor run over the in-memory table.
    let direct = Advisor::new(&table)
        .advise(
            charles::parse_query(CONTEXT, table.schema())
                .unwrap()
                .canonicalized(),
        )
        .unwrap();
    let expected = charles::serve::json::encode_advice(&direct);
    assert!(
        body.contains(&expected),
        "served advice diverged from the in-memory oracle"
    );

    let (status, _) = http_request(addr, "POST", "/session/s1/drill", "0 0").unwrap();
    assert_eq!(status, 200);
    let (status, _) = http_request(addr, "DELETE", "/session/s1", "").unwrap();
    assert_eq!(status, 204);

    handle.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn dataset_by_path_sessions_over_real_http() {
    // The @path body over a real socket: a server with a dataset root
    // serves sessions from files clients name, with the documented
    // structured errors for bad paths.
    let root = std::env::temp_dir().join(format!(
        "charles-persist-root-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&root).unwrap();
    let table = voc_table(1_500, 79);
    write_table(&table, root.join("fleet.charles")).unwrap();

    let default_backend: Arc<dyn Backend> = Arc::new(voc_table(100, 1));
    let server = Server::bind(
        "127.0.0.1:0",
        default_backend,
        ServeConfig {
            dataset_root: Some(root.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let body = format!("@fleet.charles\n{CONTEXT}");
    let (status, resp) = http_request(addr, "POST", "/session", &body).unwrap();
    assert_eq!(status, 201, "{resp}");
    // Advice comes from the 1500-row file, not the 100-row default.
    assert!(resp.contains("\"context_size\":1500"), "{resp}");

    // Escaping the root and naming a missing file both answer the
    // documented structured errors.
    let (status, resp) =
        http_request(addr, "POST", "/session", "@../escape.charles\n(tonnage: )").unwrap();
    assert!(status == 403 || status == 404, "{status} {resp}");
    assert!(
        resp.contains("\"code\":\"dataset_forbidden\"")
            || resp.contains("\"code\":\"no_such_dataset\""),
        "{resp}"
    );
    let (status, resp) =
        http_request(addr, "POST", "/session", "@missing.charles\n(tonnage: )").unwrap();
    assert_eq!(status, 404, "{resp}");
    assert!(resp.contains("\"code\":\"no_such_dataset\""), "{resp}");

    handle.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
