//! Full-stack integration: the advisor over every dataset and backend.

use charles::advisor::baselines::{facet_segmentations, random_segmentations, RandomOptions};
use charles::advisor::Explorer;
use charles::viz::{render_panel, segment_rows};
use charles::{
    astro_table, read_csv_str, voc_table, weblog_table, write_csv_string, Advisor, Config, Query,
    RowTable, Session,
};

#[test]
fn advisor_works_on_all_three_demo_datasets() {
    let contexts: [(&str, charles::Table); 3] = [
        (
            "(type_of_boat: , tonnage: , departure_harbour: )",
            voc_table(3_000, 1),
        ),
        ("(class: , magnitude: , redshift: )", astro_table(3_000, 2)),
        (
            "(section: , status: , latency_ms: )",
            weblog_table(3_000, 3),
        ),
    ];
    for (ctx, table) in &contexts {
        let advice = Advisor::new(table).advise_str(ctx).unwrap();
        assert!(
            !advice.ranked.is_empty(),
            "no advice for {ctx} on {}",
            table.name()
        );
        // The best answer should involve at least one composition or be a
        // clean binary cut with positive entropy.
        assert!(advice.ranked[0].score.entropy > 0.0);
        // All its queries render, parse back and emit SQL.
        for q in advice.ranked[0].segmentation.queries() {
            let reparsed = charles::parse_query(&q.to_string(), table.schema()).unwrap();
            assert_eq!(q, &reparsed);
            assert!(charles_sdl::query_to_sql(q, table.name()).contains("SELECT"));
        }
    }
}

#[test]
fn row_store_and_column_store_agree_on_advice() {
    let col = voc_table(2_000, 4);
    let row = RowTable::from_table(&col);
    let ctx = "(type_of_boat: , tonnage: , departure_harbour: )";
    let a_col = Advisor::new(&col).advise_str(ctx).unwrap();
    let a_row = Advisor::new(&row).advise_str(ctx).unwrap();
    assert_eq!(a_col.context_size, a_row.context_size);
    assert_eq!(a_col.ranked.len(), a_row.ranked.len());
    for (rc, rr) in a_col.ranked.iter().zip(&a_row.ranked) {
        assert!(
            (rc.score.entropy - rr.score.entropy).abs() < 1e-9,
            "entropy mismatch: {} vs {}",
            rc.score.entropy,
            rr.score.entropy
        );
        assert_eq!(rc.segmentation.depth(), rr.segmentation.depth());
    }
}

#[test]
fn csv_round_trip_preserves_advice() {
    let t = voc_table(1_000, 5);
    let csv = write_csv_string(&t);
    let t2 = read_csv_str("voc2", &csv).unwrap();
    let ctx = "(type_of_boat: , tonnage: )";
    let a1 = Advisor::new(&t).advise_str(ctx).unwrap();
    let a2 = Advisor::new(&t2).advise_str(ctx).unwrap();
    assert_eq!(a1.ranked.len(), a2.ranked.len());
    for (r1, r2) in a1.ranked.iter().zip(&a2.ranked) {
        assert_eq!(r1.segmentation.to_string(), r2.segmentation.to_string());
    }
}

#[test]
fn session_drills_to_exhaustion_or_depth_five() {
    let t = voc_table(5_000, 6);
    let mut s = Session::new(&t);
    s.start("(type_of_boat: , tonnage: , departure_harbour: , built: )")
        .unwrap();
    let mut sizes = vec![s.current().unwrap().context_size];
    for _ in 0..4 {
        match s.drill(0, 0) {
            Ok(advice) => sizes.push(advice.context_size),
            Err(_) => break, // segment too uniform to advise on: fine
        }
    }
    // Context sizes strictly shrink along the drill path.
    for w in sizes.windows(2) {
        assert!(w[1] < w[0], "drill did not narrow: {sizes:?}");
    }
    // And we can walk all the way back.
    while s.back().is_some() {}
    assert_eq!(s.depth(), 1);
}

#[test]
fn panel_renders_for_every_dataset() {
    for (ctx, table) in [
        ("(type_of_boat: , tonnage: )", voc_table(1_000, 7)),
        ("(class: , magnitude: )", astro_table(1_000, 8)),
        ("(section: , latency_ms: )", weblog_table(1_000, 9)),
    ] {
        let advice = Advisor::new(&table).advise_str(ctx).unwrap();
        let panel = render_panel(&table, &advice, 0, 100).unwrap();
        assert!(panel.contains("ranked answers"), "panel for {ctx}");
        let rows =
            segment_rows(&table, &advice.ranked[0].segmentation, advice.context_size).unwrap();
        let total: f64 = rows.iter().map(|r| r.cover).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn hbcuts_beats_random_baseline_on_entropy() {
    let t = voc_table(3_000, 10);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type_of_boat", "tonnage", "departure_harbour"]),
    )
    .unwrap();
    let hb = charles::hb_cuts(&ex).unwrap();
    let rand = random_segmentations(
        &ex,
        RandomOptions {
            count: 8,
            target_depth: hb.ranked[0].segmentation.depth().max(2),
            seed: 77,
        },
    )
    .unwrap();
    // Compare balance (entropy normalised by depth) — fair across depths.
    let hb_balance = hb.ranked[0].score.balance();
    let rand_best = rand
        .iter()
        .map(|r| r.score.balance())
        .fold(0.0f64, f64::max);
    assert!(
        hb_balance >= rand_best - 0.05,
        "HB-cuts balance {hb_balance} vs random best {rand_best}"
    );
}

#[test]
fn facets_are_narrower_than_hbcuts() {
    // The related-work contrast: facets have breadth 1, HB-cuts' best
    // answer on dependent VOC columns composes several attributes.
    let t = voc_table(3_000, 11);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&[
            "type_of_boat",
            "tonnage",
            "departure_harbour",
            "cape_arrival",
        ]),
    )
    .unwrap();
    let hb = charles::hb_cuts(&ex).unwrap();
    let facets = facet_segmentations(&ex, 4).unwrap();
    let hb_breadth = hb.ranked[0].score.breadth;
    assert!(hb_breadth >= 2, "VOC has dependencies to compose");
    for f in &facets {
        assert_eq!(f.score.breadth, 1);
    }
}

#[test]
fn stats_expose_workload_shape() {
    // §5.1: the workload is counts + medians. Verify both get exercised
    // and scale with context width.
    let t = voc_table(2_000, 12);
    let narrow = Advisor::new(&t).advise_str("(tonnage: , built: )").unwrap();
    let wide = Advisor::new(&t)
        .advise_str("(type_of_boat: , tonnage: , departure_harbour: , cape_arrival: , built: )")
        .unwrap();
    assert!(wide.backend_ops.scans > narrow.backend_ops.scans);
    assert!(wide.backend_ops.medians >= narrow.backend_ops.medians);
    // Memoization pays off in wide contexts.
    assert!(wide.cache.sel_hits > 0);
}
