//! Cross-crate coverage of the §5.2 extensions and the open-question
//! modules (homogeneity, surprise, sparklines, multi-level pies, adaptive
//! cuts, lazy generation) working together on realistic data.

use charles::advisor::baselines::{random_segmentations, RandomOptions};
use charles::advisor::{
    adaptive_segmentations, homogeneity, quantile_cut_segmentation, rank_by_surprise, surprise,
    AdaptiveOptions, Explorer, LazyGenerator,
};
use charles::viz::{multi_level_pie, segment_sparklines, PieLevel};
use charles::{astro_table, voc_table, Config, MedianStrategy, Query, Segmentation};

#[test]
fn homogeneity_of_hbcuts_beats_random_on_voc() {
    let t = voc_table(5_000, 31);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type_of_boat", "tonnage", "built", "departure_harbour"]),
    )
    .unwrap();
    let hb = charles::hb_cuts(&ex).unwrap();
    let h_hb = homogeneity(&ex, &hb.ranked[0].segmentation).unwrap();
    let rand = random_segmentations(
        &ex,
        RandomOptions {
            count: 5,
            target_depth: hb.ranked[0].segmentation.depth().max(2),
            seed: 7,
        },
    )
    .unwrap();
    let h_rand: f64 = rand
        .iter()
        .map(|r| homogeneity(&ex, &r.segmentation).unwrap().mean_gain)
        .sum::<f64>()
        / rand.len() as f64;
    assert!(
        h_hb.mean_gain > h_rand,
        "hb {} vs random {h_rand}",
        h_hb.mean_gain
    );
    // Per-attribute entries only mention context attributes.
    for (attr, gain) in &h_hb.per_attribute {
        assert!(ex.attributes().contains(&attr.as_str()));
        assert!((0.0..=1.0).contains(gain));
    }
}

#[test]
fn surprise_reranking_is_a_permutation() {
    let t = voc_table(5_000, 32);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type_of_boat", "tonnage", "built"]),
    )
    .unwrap();
    let hb = charles::hb_cuts(&ex).unwrap();
    let n = hb.ranked.len();
    let reranked = rank_by_surprise(&ex, hb.ranked.clone()).unwrap();
    assert_eq!(reranked.len(), n);
    // Scores are sorted descending and all finite.
    for w in reranked.windows(2) {
        assert!(w[0].0 >= w[1].0 - 1e-12);
    }
    // The same segmentations, possibly reordered.
    let mut before: Vec<String> = hb
        .ranked
        .iter()
        .map(|r| charles::advisor::fingerprint(&r.segmentation))
        .collect();
    let mut after: Vec<String> = reranked
        .iter()
        .map(|(_, r)| charles::advisor::fingerprint(&r.segmentation))
        .collect();
    before.sort();
    after.sort();
    assert_eq!(before, after);
}

#[test]
fn surprise_weighted_score_is_nonnegative() {
    let t = astro_table(4_000, 33);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["class", "magnitude", "redshift"]),
    )
    .unwrap();
    let hb = charles::hb_cuts(&ex).unwrap();
    for r in &hb.ranked {
        let s = surprise(&ex, &r.segmentation).unwrap();
        assert!(s.weighted >= 0.0);
        assert_eq!(s.per_segment.len(), r.segmentation.depth());
    }
}

#[test]
fn quantile_segmentation_composes_with_median_cuts() {
    // Mix the extension with the core primitive: tercile-cut the context
    // on one attribute, then median-cut the result on another.
    let t = voc_table(5_000, 34);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["tonnage", "built"]),
    )
    .unwrap();
    let base = Segmentation::singleton(ex.context().clone());
    let terciles = quantile_cut_segmentation(&ex, &base, "tonnage", 3)
        .unwrap()
        .unwrap();
    assert_eq!(terciles.depth(), 3);
    let mixed = charles::advisor::cut_segmentation(&ex, &terciles, "built")
        .unwrap()
        .unwrap();
    assert_eq!(mixed.depth(), 6);
    assert!(mixed
        .check_partition(ex.backend(), ex.context_selection())
        .unwrap()
        .is_partition());
}

#[test]
fn sampled_median_advisor_agrees_with_exact_on_shape() {
    let t = voc_table(20_000, 35);
    let ctx = "(type_of_boat: , tonnage: , built: )";
    let exact = charles::Advisor::new(&t).advise_str(ctx).unwrap();
    let sampled = charles::Advisor::with_config(
        &t,
        Config::default().with_median(MedianStrategy::Sampled { size: 512, seed: 1 }),
    )
    .advise_str(ctx)
    .unwrap();
    assert_eq!(exact.ranked.len(), sampled.ranked.len());
    // The same multiset of attribute structures is produced (near-tied
    // entropies may swap ranks, so compare unordered).
    let structures = |a: &charles::Advice| {
        let mut v: Vec<String> = a
            .ranked
            .iter()
            .map(|r| {
                let mut attrs: Vec<&str> = r.segmentation.attributes();
                attrs.sort();
                attrs.join("+")
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(structures(&exact), structures(&sampled));
    let d = (exact.ranked[0].score.entropy - sampled.ranked[0].score.entropy).abs();
    assert!(d < 0.05, "entropy drift {d}");
}

#[test]
fn lazy_generator_streams_while_eager_blocks() {
    let t = voc_table(10_000, 36);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type_of_boat", "tonnage", "built", "departure_harbour"]),
    )
    .unwrap();
    let mut gen = LazyGenerator::new(&ex);
    let mut seen = 0;
    while let Some((seg, score)) = gen.next_segmentation().unwrap() {
        seen += 1;
        assert!(seg.depth() >= 2);
        assert!(score.entropy >= 0.0);
        if seen > 64 {
            panic!("generator does not terminate");
        }
    }
    assert!(seen >= 4, "only {seen} answers");
    assert!(gen.stop_reason().is_some());
}

#[test]
fn adaptive_cuts_produce_valid_heterogeneous_partitions_on_voc() {
    let t = voc_table(5_000, 37);
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type_of_boat", "tonnage", "built"]),
    )
    .unwrap();
    let ranked = adaptive_segmentations(
        &ex,
        AdaptiveOptions {
            restarts: 6,
            target_depth: 8,
            exploration: 0.85,
            seed: 99,
        },
    )
    .unwrap();
    assert!(!ranked.is_empty());
    for r in &ranked {
        assert!(r
            .segmentation
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }
}

#[test]
fn sparklines_and_multipie_render_for_advice() {
    let t = astro_table(5_000, 38);
    let advice = charles::Advisor::new(&t)
        .advise_str("(class: , magnitude: , redshift: )")
        .unwrap();
    let best = &advice.ranked[0].segmentation;
    let ex = Explorer::new(&t, Config::default(), advice.context.clone()).unwrap();
    let sparks =
        segment_sparklines(&t, best.queries(), "magnitude", ex.context_selection(), 16).unwrap();
    assert_eq!(sparks.len(), best.depth());
    for s in &sparks {
        assert_eq!(s.chars().count(), 16);
    }
    // Build a two-level pie: group segments by their first constrained
    // attribute value rendering.
    let covers: Vec<f64> = best
        .queries()
        .iter()
        .map(|q| ex.cover(q).unwrap())
        .collect();
    let level = PieLevel {
        groups: vec![covers.clone()], // single group: degenerate but valid
    };
    let pie = multi_level_pie(&level, 6);
    assert!(pie.lines().count() > 0);
}
