//! Experiment E4 — Figure 1: structural invariants of the rendered
//! interface on the VOC dataset.
//!
//! The paper's screen has three regions: the search context (left), the
//! ranked answer list (top, one pie per segmentation), and the selected
//! segmentation's detail view. We assert the text rendering carries all
//! three with consistent numbers, and that the famous example answer
//! shape — harbour × tonnage style compositions with near-equal slices —
//! arises from the planted VOC dependencies.

use charles::viz::{context_panel, render_panel, segment_rows};
use charles::{voc_table, Advisor};

const CONTEXT: &str = "(type_of_boat: , tonnage: , departure_harbour: , cape_arrival: , built: )";

#[test]
fn panel_has_all_three_regions() {
    let ships = voc_table(10_000, 1713);
    let advice = Advisor::new(&ships).advise_str(CONTEXT).unwrap();
    let panel = render_panel(&ships, &advice, 0, 110).unwrap();
    assert!(panel.contains("Charles"), "title bar");
    assert!(panel.contains("ranked answers"), "top panel");
    assert!(panel.contains("selected segmentation"), "main panel");
    // One ranked row per answer (capped at 10), each with its metrics.
    let rows = panel
        .lines()
        .filter(|l| l.contains("E=") && l.contains("B="))
        .count();
    assert_eq!(rows, advice.ranked.len().min(10));
    // The context panel enumerates every context column.
    let ctx_panel = context_panel(&advice.context);
    for col in [
        "type_of_boat",
        "tonnage",
        "departure_harbour",
        "cape_arrival",
        "built",
    ] {
        assert!(ctx_panel.contains(col), "{col} missing from context panel");
    }
}

#[test]
fn best_answer_composes_the_planted_dependencies() {
    // The VOC generator plants type↔tonnage and built↔era dependencies;
    // Figure 1's example answers compose exactly such column pairs. The
    // top-ranked answer must be a composition (breadth ≥ 2) involving
    // type_of_boat or tonnage.
    let ships = voc_table(10_000, 1713);
    let advice = Advisor::new(&ships).advise_str(CONTEXT).unwrap();
    let best = &advice.ranked[0];
    assert!(best.score.breadth >= 2, "best answer should compose");
    let attrs = best.segmentation.attributes();
    assert!(
        attrs.contains(&"type_of_boat") || attrs.contains(&"tonnage"),
        "expected the planted dependency, got {attrs:?}"
    );
}

#[test]
fn ranked_list_numbers_are_consistent_with_the_data() {
    let ships = voc_table(10_000, 1713);
    let advice = Advisor::new(&ships).advise_str(CONTEXT).unwrap();
    for r in advice.ranked.iter().take(5) {
        let rows = segment_rows(&ships, &r.segmentation, advice.context_size).unwrap();
        // Counts sum to the context; covers to 1.
        let total: usize = rows.iter().map(|s| s.count).sum();
        assert_eq!(total, advice.context_size);
        let cover_sum: f64 = rows.iter().map(|s| s.cover).sum();
        assert!((cover_sum - 1.0).abs() < 1e-9);
        // The displayed entropy is reproducible from the displayed covers.
        let covers: Vec<f64> = rows.iter().map(|s| s.cover).collect();
        let e = charles::advisor::entropy_from_covers(&covers);
        assert!((e - r.score.entropy).abs() < 1e-9);
    }
}

#[test]
fn near_equal_slices_like_the_figure() {
    // Figure 1's example answers split the context into near-equal
    // pieces. Our best answer's balance must be high (> 0.9 of ln M).
    let ships = voc_table(10_000, 1713);
    let advice = Advisor::new(&ships).advise_str(CONTEXT).unwrap();
    let balance = advice.ranked[0].score.balance();
    assert!(balance > 0.9, "balance {balance}");
}

#[test]
fn every_displayed_query_parses_back() {
    // The interface displays SDL text; everything shown must re-parse —
    // the user can copy a segment straight into the next context box.
    let ships = voc_table(10_000, 1713);
    let advice = Advisor::new(&ships).advise_str(CONTEXT).unwrap();
    for r in &advice.ranked {
        for q in r.segmentation.queries() {
            let reparsed = charles::parse_query(&q.to_string(), ships.schema()).unwrap();
            assert_eq!(q, &reparsed);
        }
    }
}
