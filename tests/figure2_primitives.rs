//! Experiment E1 — reproduce Figure 2 of the paper: "Cut, composition and
//! product of segmentations".
//!
//! The figure works on a boats relation with a `type` attribute (fluit /
//! jacht) and numeric attributes `tonnage` and `year` (departure years
//! 1700–1780). It shows:
//!
//! * `CUT_tonnage(A)` — each type-piece of A splits at its own tonnage
//!   median (fluit 1000–2000 / 2000–5000, jacht 1000–3000 / 3000–5000);
//! * `COMPOSE(A, B)` — A's type pieces re-cut at their *conditional* year
//!   medians (fluit 1700–1744 / 1744–1780, jacht 1700–1760 / 1760–1780);
//! * `A × B` — the plain product uses B's *global* year boundary (1750)
//!   for both types.
//!
//! The distinguishing observable: COMPOSE adapts split points per piece,
//! the product does not. We assert exactly that, plus the partition
//! property for every derived segmentation.

use charles::advisor::{compose, cut_segmentation, product, Explorer};
use charles::{Config, Constraint, Query, Segmentation, TableBuilder, Value};
use charles_store::DataType;

/// Eight boats mirroring Figure 2's example: four fluits that sail early
/// (years 1700–1744), four jachts that sail late (1750–1780), tonnage
/// spread within type so every piece can be halved again.
fn figure2_table() -> charles::Table {
    let mut b = TableBuilder::new("boats");
    b.add_column("type", DataType::Str)
        .add_column("tonnage", DataType::Int)
        .add_column("year", DataType::Int);
    let rows = [
        ("fluit", 1200, 1700),
        ("fluit", 1800, 1720),
        ("fluit", 2500, 1736),
        ("fluit", 4000, 1744),
        ("jacht", 1500, 1750),
        ("jacht", 2800, 1760),
        ("jacht", 3500, 1770),
        ("jacht", 4800, 1780),
    ];
    for (ty, t, y) in rows {
        b.push_row(vec![Value::str(ty), Value::Int(t), Value::Int(y)])
            .unwrap();
    }
    b.finish()
}

fn explorer(t: &charles::Table) -> Explorer<'_> {
    Explorer::new(
        t,
        Config::default(),
        Query::wildcard(&["type", "tonnage", "year"]),
    )
    .unwrap()
}

/// Set A of the figure: {fluit} / {jacht}.
fn set_a(ex: &Explorer<'_>) -> Segmentation {
    cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), "type")
        .unwrap()
        .unwrap()
}

/// Set B of the figure: the year halves 1700–1750 / 1750–1780.
fn set_b(ex: &Explorer<'_>) -> Segmentation {
    cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), "year")
        .unwrap()
        .unwrap()
}

fn year_bounds(q: &Query) -> (i64, i64) {
    match q.constraint("year") {
        Some(Constraint::Range { lo, hi, .. }) => match (lo, hi) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            other => panic!("unexpected year bounds {other:?}"),
        },
        other => panic!("expected year range, got {other:?}"),
    }
}

#[test]
fn set_a_splits_types_evenly() {
    let t = figure2_table();
    let ex = explorer(&t);
    let a = set_a(&ex);
    assert_eq!(a.depth(), 2);
    for q in a.queries() {
        assert_eq!(ex.count(q).unwrap(), 4, "{q}");
        assert!(matches!(
            q.constraint("type"),
            Some(Constraint::Set(v)) if v.len() == 1
        ));
    }
}

#[test]
fn cut_tonnage_of_a_adapts_medians_per_type() {
    // Figure 2 top: CUT_tonnage(A) gives fluit 1000–2000 / 2000–5000 and
    // jacht 1000–3000 / 3000–5000 — the tonnage boundary *differs* per
    // type because each piece is cut at its own median.
    let t = figure2_table();
    let ex = explorer(&t);
    let a = set_a(&ex);
    let cut = cut_segmentation(&ex, &a, "tonnage").unwrap().unwrap();
    assert_eq!(cut.depth(), 4);
    for q in cut.queries() {
        assert_eq!(ex.count(q).unwrap(), 2, "{q}");
    }
    // Collect the per-type split boundaries: they must differ.
    let mut uppers_of_lower_piece: Vec<i64> = Vec::new();
    for q in cut.queries() {
        if let Some(Constraint::Range {
            lo: Value::Int(lo),
            hi: Value::Int(hi),
            ..
        }) = q.constraint("tonnage")
        {
            // The lower piece of each type starts at that type's minimum.
            if *lo == 1200 || *lo == 1500 {
                uppers_of_lower_piece.push(*hi);
            }
        }
    }
    assert_eq!(uppers_of_lower_piece.len(), 2);
    assert_ne!(
        uppers_of_lower_piece[0], uppers_of_lower_piece[1],
        "per-type medians must differ"
    );
    assert!(cut
        .check_partition(ex.backend(), ex.context_selection())
        .unwrap()
        .is_partition());
}

#[test]
fn compose_a_b_recuts_years_per_type() {
    // Figure 2 middle: COMPOSE(A,B) = fluit 1700–1744 / 1744–1780 and
    // jacht 1700–1760 / 1760–1780 — conditional year medians.
    let t = figure2_table();
    let ex = explorer(&t);
    let a = set_a(&ex);
    let b = set_b(&ex);
    let composed = compose(&ex, &a, &b).unwrap().unwrap();
    assert_eq!(composed.depth(), 4);
    for q in composed.queries() {
        assert_eq!(ex.count(q).unwrap(), 2, "{q}");
    }
    // The fluit year boundary (~1720/1736) differs from the jacht one
    // (~1760/1770): collect the upper bound of each type's early piece.
    let mut early_uppers = std::collections::BTreeMap::new();
    for q in composed.queries() {
        let ty = match q.constraint("type") {
            Some(Constraint::Set(v)) => v[0].render(),
            _ => panic!("type constraint lost"),
        };
        let (lo, hi) = year_bounds(q);
        // Early piece = the one whose lower bound is the type minimum.
        if lo == 1700 || lo == 1750 {
            early_uppers.insert(ty, hi);
        }
    }
    assert_eq!(early_uppers.len(), 2);
    let fluit = early_uppers["fluit"];
    let jacht = early_uppers["jacht"];
    assert!(
        fluit < 1750,
        "fluit early piece must end before 1750, got {fluit}"
    );
    assert!(
        jacht >= 1750,
        "jacht early piece must end after 1750, got {jacht}"
    );
    assert!(composed
        .check_partition(ex.backend(), ex.context_selection())
        .unwrap()
        .is_partition());
}

#[test]
fn product_a_b_uses_global_year_boundary() {
    // Figure 2 bottom: A × B intersects A's type pieces with B's *global*
    // year halves — all cells share B's single year boundary.
    let t = figure2_table();
    let ex = explorer(&t);
    let a = set_a(&ex);
    let b = set_b(&ex);
    let prod = product(&ex, &a, &b).unwrap();
    // 2 × 2 cells; with this data the off-type-era cells are thin but
    // non-empty only where types overlap B's halves. fluits all sail
    // before 1750, jachts from 1750 → exactly 2 non-empty cells remain
    // after pruning (the diagonal), which is the dependence signal.
    assert_eq!(prod.depth(), 2, "{prod}");
    let mut boundaries = std::collections::BTreeSet::new();
    for q in prod.queries() {
        let (lo, hi) = year_bounds(q);
        boundaries.insert(lo);
        boundaries.insert(hi);
    }
    // Global halves only: every cell shares the single year boundary of B
    // (the global median falls between the last fluit, 1744, and the first
    // jacht, 1750 — the figure rounds it to 1750). Exactly one interior
    // boundary pair may appear.
    let interior: Vec<i64> = boundaries
        .iter()
        .copied()
        .filter(|&b| b != 1700 && b != 1780)
        .collect();
    assert_eq!(interior.len(), 2, "one shared split: {boundaries:?}");
    assert_eq!(interior[0] + 1, interior[1], "adjacent closed bounds");
    assert!(
        (1744..1750).contains(&interior[0]),
        "global boundary {interior:?} must separate fluits from jachts"
    );
    assert!(prod
        .check_partition(ex.backend(), ex.context_selection())
        .unwrap()
        .is_partition());
}

#[test]
fn product_vs_compose_balance_tells_dependence() {
    // The figure's point: with type ↔ year dependence, COMPOSE keeps four
    // balanced pieces while the raw product collapses. Entropy sees it.
    let t = figure2_table();
    let ex = explorer(&t);
    let a = set_a(&ex);
    let b = set_b(&ex);
    let composed = compose(&ex, &a, &b).unwrap().unwrap();
    let prod = product(&ex, &a, &b).unwrap();
    let e_compose = charles::advisor::entropy(&ex, &composed).unwrap();
    let e_product = charles::advisor::entropy(&ex, &prod).unwrap();
    assert!(
        e_compose > e_product + 0.5,
        "compose {e_compose} should clearly beat product {e_product}"
    );
    // And INDEP flags the dependence (well under the 0.99 threshold).
    let v = charles::advisor::indep(&ex, &a, &b).unwrap();
    assert!(v < 0.8, "INDEP {v} should reveal type↔year dependence");
}
