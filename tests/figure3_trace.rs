//! Experiment E2 — reproduce Figure 3: "Example execution of HB-cuts".
//!
//! The figure shows a run over five attributes where the algorithm
//! composes att2+att3, then att4+att5, then att1 with the {att2,att3}
//! block, then stops ("No split" on the remaining pair) — "the procedure
//! generates and returns 8 segmentations".
//!
//! We synthesise data with exactly that dependency structure and assert
//! the full execution: seed set, composition order (up to the symmetric
//! swap of the first two steps), stop reason, and the final count of 8.

use charles::advisor::{hb_cuts, Explorer};
use charles::{Config, Query, TableBuilder, Value};
use charles_store::DataType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn figure3_table(n: usize, seed: u64) -> charles::Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TableBuilder::new("t");
    for name in ["att1", "att2", "att3", "att4", "att5"] {
        b.add_column(name, DataType::Int);
    }
    for _ in 0..n {
        let a2: i64 = rng.gen_range(0..100);
        let a3 = a2 + rng.gen_range(-3i64..=3);
        let a1 = a2 / 2 + rng.gen_range(-2i64..=2);
        let a4: i64 = rng.gen_range(0..100);
        let a5 = a4 + rng.gen_range(-3i64..=3);
        b.push_row(vec![
            Value::Int(a1),
            Value::Int(a2),
            Value::Int(a3),
            Value::Int(a4),
            Value::Int(a5),
        ])
        .unwrap();
    }
    b.finish()
}

fn sorted_union(left: &[String], right: &[String]) -> Vec<String> {
    let mut v: Vec<String> = left.iter().chain(right).cloned().collect();
    v.sort();
    v
}

#[test]
fn produces_exactly_eight_segmentations() {
    let t = figure3_table(3000, 42);
    let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
    let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    assert_eq!(out.trace.seeds.len(), 5, "all five attributes seed");
    assert_eq!(
        out.trace.steps.iter().filter(|s| s.accepted).count(),
        3,
        "three compositions as in the figure"
    );
    assert_eq!(out.ranked.len(), 8, "5 seeds + 3 compositions");
}

#[test]
fn composition_tree_matches_figure() {
    let t = figure3_table(3000, 42);
    let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
    let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    let accepted: Vec<Vec<String>> = out
        .trace
        .steps
        .iter()
        .filter(|s| s.accepted)
        .map(|s| sorted_union(&s.left_attrs, &s.right_attrs))
        .collect();
    // Steps 1 and 2 (in either order): {att2,att3} and {att4,att5}.
    let first_two: Vec<&Vec<String>> = accepted.iter().take(2).collect();
    assert!(
        first_two.iter().any(|v| **v == ["att2", "att3"]),
        "missing att2+att3 in {accepted:?}"
    );
    assert!(
        first_two.iter().any(|v| **v == ["att4", "att5"]),
        "missing att4+att5 in {accepted:?}"
    );
    // Step 3: att1 joins the {att2,att3} block.
    assert_eq!(accepted[2], ["att1", "att2", "att3"], "{accepted:?}");
}

#[test]
fn rejected_step_is_the_figure_no_split() {
    // The final considered pair — {att1,att2,att3} × {att4,att5} — is
    // independent by construction, so the loop must stop on the INDEP
    // threshold (the figure's "No split") or on the depth bound
    // (8 × 4 = 32 pieces > 12), whichever fires first.
    let t = figure3_table(3000, 42);
    let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
    let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    let last = out.trace.steps.last().expect("at least one step");
    assert!(!last.accepted);
    let union = sorted_union(&last.left_attrs, &last.right_attrs);
    assert_eq!(union, ["att1", "att2", "att3", "att4", "att5"]);
    assert!(out.trace.stop.is_some());
}

#[test]
fn ranked_output_contains_every_tree_node() {
    // The returned set must contain: each single-attribute seed, the two
    // pair blocks, and the triple block — the nodes of Figure 3's tree.
    let t = figure3_table(3000, 42);
    let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
    let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    let attr_sets: Vec<Vec<String>> = out
        .ranked
        .iter()
        .map(|r| {
            let mut v: Vec<String> = r
                .segmentation
                .attributes()
                .iter()
                .map(|s| s.to_string())
                .collect();
            v.sort();
            v
        })
        .collect();
    let expect = |target: &[&str]| {
        assert!(
            attr_sets.iter().any(|s| s == target),
            "missing node {target:?} in {attr_sets:?}"
        );
    };
    for single in ["att1", "att2", "att3", "att4", "att5"] {
        expect(&[single]);
    }
    expect(&["att2", "att3"]);
    expect(&["att4", "att5"]);
    expect(&["att1", "att2", "att3"]);
}

#[test]
fn deeper_compositions_rank_higher() {
    // "sort(output)" by entropy: the 8-piece triple block must outrank
    // every binary seed.
    let t = figure3_table(3000, 42);
    let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
    let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    let top = &out.ranked[0];
    assert!(
        top.segmentation.attributes().len() >= 2,
        "top answer should be a composition, got {}",
        top.segmentation
    );
    let top_depth = top.segmentation.depth();
    assert!(top_depth >= 4, "top depth {top_depth}");
}
