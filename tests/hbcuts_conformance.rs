//! Experiment E3 — Figure 4 conformance: the HB-cuts pseudo-code's
//! observable contract, exercised on realistic (VOC) data.
//!
//! * line 4: one candidate per cuttable attribute;
//! * line 11: the most dependent pair is composed first;
//! * lines 15–16: both stopping criteria (maxIndep, maxDepth) fire and
//!   the triggering composition is discarded;
//! * line 23: candidates still alive at the stop are returned;
//! * line 25: output sorted by entropy.

use charles::advisor::{hb_cuts, indep, Explorer, StopReason};
use charles::{voc_table, Config, Query};

const VOC_CONTEXT: [&str; 5] = [
    "type_of_boat",
    "tonnage",
    "departure_harbour",
    "cape_arrival",
    "built",
];

#[test]
fn seeds_equal_cuttable_attributes() {
    let t = voc_table(5_000, 11);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    // Every VOC context column varies, so every one must seed.
    assert_eq!(out.trace.seeds.len(), VOC_CONTEXT.len());
    assert!(out.trace.skipped.is_empty());
}

#[test]
fn first_composition_is_the_most_dependent_pair() {
    let t = voc_table(5_000, 11);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    let first = out.trace.steps.first().expect("at least one step");
    // Recompute all pairwise INDEPs of the seeds and check minimality.
    let base = charles::Segmentation::singleton(ex.context().clone());
    let seeds: Vec<charles::Segmentation> = out
        .trace
        .seeds
        .iter()
        .map(|a| {
            charles::advisor::cut_segmentation(&ex, &base, a)
                .unwrap()
                .unwrap()
        })
        .collect();
    let mut min = f64::INFINITY;
    for i in 0..seeds.len() {
        for j in (i + 1)..seeds.len() {
            min = min.min(indep(&ex, &seeds[i], &seeds[j]).unwrap());
        }
    }
    assert!(
        (first.indep - min).abs() < 1e-9,
        "first step INDEP {} vs true minimum {min}",
        first.indep
    );
}

#[test]
fn max_indep_one_composes_until_depth() {
    // With maxIndep = 1.0 the independence stop can never fire; the loop
    // must end on the depth bound (or run out of candidates).
    let t = voc_table(3_000, 12);
    let cfg = Config::default().with_max_indep(1.0);
    let ex = Explorer::new(&t, cfg, Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    assert!(matches!(
        out.trace.stop,
        Some(StopReason::DepthLimit) | Some(StopReason::ExhaustedCandidates)
    ));
}

#[test]
fn max_indep_zero_stops_immediately() {
    // With maxIndep = 0 every pair trips the threshold: only seeds return.
    let t = voc_table(3_000, 12);
    let cfg = Config::default().with_max_indep(0.0);
    let ex = Explorer::new(&t, cfg, Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    assert_eq!(out.trace.stop, Some(StopReason::IndependenceThreshold));
    assert_eq!(out.ranked.len(), out.trace.seeds.len());
    assert!(out.trace.steps.iter().all(|s| !s.accepted));
}

#[test]
fn depth_bound_never_exceeded_in_output() {
    let t = voc_table(5_000, 13);
    for max_depth in [4, 8, 12] {
        let cfg = Config::default()
            .with_max_depth(max_depth)
            .with_max_indep(1.0);
        let ex = Explorer::new(&t, cfg, Query::wildcard(&VOC_CONTEXT)).unwrap();
        let out = hb_cuts(&ex).unwrap();
        for r in &out.ranked {
            assert!(
                r.segmentation.depth() < max_depth * 4,
                "depth {} returned under bound {max_depth}",
                r.segmentation.depth()
            );
        }
        // The rejected composition (if any) was at least max_depth deep.
        if out.trace.stop == Some(StopReason::DepthLimit) {
            let last = out.trace.steps.last().unwrap();
            assert!(last.depth >= max_depth);
        }
    }
}

#[test]
fn discarded_composition_not_in_output() {
    // When the loop stops, `newSeg` is dropped: no returned segmentation
    // may match the rejected step's depth AND attribute union.
    let t = voc_table(3_000, 14);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    if let Some(last) = out.trace.steps.last().filter(|s| !s.accepted) {
        let mut union: Vec<String> = last
            .left_attrs
            .iter()
            .chain(&last.right_attrs)
            .cloned()
            .collect();
        union.sort();
        union.dedup();
        for r in &out.ranked {
            let mut attrs: Vec<String> = r
                .segmentation
                .attributes()
                .iter()
                .map(|s| s.to_string())
                .collect();
            attrs.sort();
            assert!(
                attrs != union,
                "rejected composition {union:?} leaked into output"
            );
        }
    }
}

#[test]
fn output_is_entropy_sorted_and_capped() {
    let t = voc_table(5_000, 15);
    let cfg = Config::default().with_max_results(4);
    let ex = Explorer::new(&t, cfg, Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    assert!(out.ranked.len() <= 4);
    for w in out.ranked.windows(2) {
        assert!(w[0].score.entropy >= w[1].score.entropy - 1e-12);
    }
}

#[test]
fn all_outputs_partition_the_context_on_real_data() {
    let t = voc_table(5_000, 16);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&VOC_CONTEXT)).unwrap();
    let out = hb_cuts(&ex).unwrap();
    for r in &out.ranked {
        let report = r
            .segmentation
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap();
        assert!(report.is_partition(), "{}: {report:?}", r.segmentation);
    }
}

#[test]
fn memoization_does_not_change_results() {
    // The §5.1 reuse optimization must be purely a performance feature.
    let t = voc_table(3_000, 17);
    let run = |memoize: bool| {
        let cfg = Config::default().with_memoize(memoize);
        let ex = Explorer::new(&t, cfg, Query::wildcard(&VOC_CONTEXT)).unwrap();
        hb_cuts(&ex)
            .unwrap()
            .ranked
            .iter()
            .map(|r| r.segmentation.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(true), run(false));
}
