//! Naive ⇔ incremental equivalence of the HB-cuts pair argmin.
//!
//! `hb_cuts` maintains incremental per-run pair state (interned
//! candidate ids, a triangular INDEP matrix, a ban set for uncomposable
//! pairs); `hb_cuts_naive` re-enumerates and re-probes all O(k²) pairs
//! through the explorer's shared memo every iteration, as the advisor
//! did before the incremental refactor. The contract: this is purely an
//! execution-strategy change — **bitwise-identical advisor output**,
//! meaning the same compose trace (same pairs in the same order, same
//! skipped pairs, same `StopReason`) and the same ranked answers down to
//! the f64 score bits, across:
//!
//! * memoization on and off,
//! * `MedianStrategy::Exact` and `::Sampled`,
//! * `Table` and `ShardedTable` backends (shard counts {1, 7}, matching
//!   the `CHARLES_SHARDS` values CI smokes),
//!
//! plus a probe-count assertion: the incremental path must issue at most
//! half the naive path's INDEP memo probes once there are ≥ 16
//! candidates (the whole point of the refactor).

use charles::advisor::{hb_cuts, hb_cuts_naive, Explorer, HbCutsOutput};
use charles::{sweep_table, voc_table, Config, MedianStrategy, Query, ShardedTable, Table};
use charles_store::Backend;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ranked answer in exactly-comparable form: segmentation text plus
/// the raw bits of the entropy score and the integer score fields.
type RankedFingerprint = (String, u64, usize, usize, usize);

/// Exact comparable form: ranked segmentation text + raw score bits,
/// the full trace rendering (steps, skipped pairs, stop reason), and
/// nothing nondeterministic.
fn run_fingerprint(out: &HbCutsOutput) -> (Vec<RankedFingerprint>, String) {
    let ranked = out
        .ranked
        .iter()
        .map(|r| {
            (
                r.segmentation.to_string(),
                r.score.entropy.to_bits(),
                r.score.simplicity,
                r.score.breadth,
                r.score.depth,
            )
        })
        .collect();
    (ranked, format!("{:?}", out.trace))
}

/// The configuration matrix the equivalence must hold over.
fn config_matrix() -> Vec<(&'static str, Config)> {
    vec![
        ("memo+exact", Config::default()),
        ("nomemo+exact", Config::default().with_memoize(false)),
        (
            "memo+sampled",
            Config::default().with_median(MedianStrategy::Sampled { size: 256, seed: 7 }),
        ),
        (
            "nomemo+sampled",
            Config::default()
                .with_memoize(false)
                .with_median(MedianStrategy::Sampled { size: 256, seed: 7 }),
        ),
    ]
}

/// Assert naive ⇔ incremental equality for one backend + context over
/// the whole configuration matrix. Returns the number of configurations
/// that produced at least one composition (so callers can assert the
/// comparison was not vacuous).
fn assert_equivalent(backend: &dyn Backend, ctx: &Query, label: &str) -> usize {
    let mut composed = 0;
    for (cfg_label, cfg) in config_matrix() {
        let inc = {
            let ex = Explorer::new(backend, cfg.clone(), ctx.clone()).unwrap();
            hb_cuts(&ex).unwrap()
        };
        let naive = {
            let ex = Explorer::new(backend, cfg, ctx.clone()).unwrap();
            hb_cuts_naive(&ex).unwrap()
        };
        assert_eq!(
            run_fingerprint(&inc),
            run_fingerprint(&naive),
            "naive and incremental HB-cuts diverged ({label}, {cfg_label})"
        );
        if inc.trace.steps.iter().any(|s| s.accepted) {
            composed += 1;
        }
    }
    composed
}

#[test]
fn equivalent_on_voc_across_configs_and_shards() {
    let table = voc_table(6_000, 23);
    let ctx = Query::wildcard(&[
        "type_of_boat",
        "tonnage",
        "departure_harbour",
        "cape_arrival",
        "built",
    ]);
    let mut composed = 0;
    composed += assert_equivalent(&table, &ctx, "table");
    for shards in [1usize, 7] {
        let sharded = ShardedTable::from_table(&table, shards);
        composed += assert_equivalent(&sharded, &ctx, &format!("sharded-{shards}"));
    }
    assert!(composed > 0, "every configuration stopped before composing");
}

#[test]
fn equivalent_on_dependency_chain() {
    // The sweep table's chained dependencies force many compositions, so
    // the incremental state is carried across many iterations.
    let table = sweep_table(4_000, 8, 5);
    let names = Backend::schema(&table).names();
    let take: Vec<&str> = names.into_iter().take(8).collect();
    let ctx = Query::wildcard(&take);
    let composed = assert_equivalent(&table, &ctx, "sweep");
    assert!(composed > 0);
}

#[test]
fn equivalent_when_best_pairs_are_uncomposable() {
    // Duplicate binary columns make the most dependent pairs
    // uncomposable: the fallback path (ban + next-most-dependent pair)
    // must also be identical between the two implementations.
    let mut rng = StdRng::seed_from_u64(77);
    let mut b = charles::TableBuilder::new("t");
    for name in ["a", "b", "c", "d"] {
        b.add_column(name, charles_store::DataType::Int);
    }
    for _ in 0..1500 {
        let a: i64 = rng.gen_range(0..2);
        let c = a * 100 + rng.gen_range(0i64..80);
        let d: i64 = rng.gen_range(0..100);
        b.push_row(vec![
            charles::Value::Int(a),
            charles::Value::Int(a),
            charles::Value::Int(c),
            charles::Value::Int(d),
        ])
        .unwrap();
    }
    let table = b.finish();
    let ctx = Query::wildcard(&["a", "b", "c", "d"]);
    assert_equivalent(&table, &ctx, "uncomposable");
    // And the skip really happened (the comparison above was not
    // vacuous for the fallback path).
    let ex = Explorer::new(&table, Config::default(), ctx).unwrap();
    let out = hb_cuts(&ex).unwrap();
    assert!(
        !out.trace.skipped_pairs.is_empty(),
        "expected the duplicate-column pair to be skipped: {:?}",
        out.trace
    );
}

#[test]
fn incremental_halves_indep_probes_at_16_candidates() {
    // The acceptance bar of the refactor: at k ≥ 16 candidates the
    // incremental path must issue at most half the INDEP memo probes of
    // the naive path (it carries all non-frontier pairs in run-local
    // state instead of re-probing the shared memo each iteration).
    let k = 16usize;
    let table = sweep_table(3_000, k, 11);
    let names = Backend::schema(&table).names();
    let take: Vec<&str> = names.into_iter().take(k).collect();
    let ctx = Query::wildcard(&take);
    // max_indep 1.0 + a deep bound keeps the loop composing, the
    // worst case for the pair argmin.
    let cfg = Config::default().with_max_indep(1.0).with_max_depth(64);

    let probes = |naive: bool| {
        let ex = Explorer::new(&table, cfg.clone(), ctx.clone()).unwrap();
        let out = if naive {
            hb_cuts_naive(&ex).unwrap()
        } else {
            hb_cuts(&ex).unwrap()
        };
        assert!(
            out.trace.steps.iter().filter(|s| s.accepted).count() >= 3,
            "need several iterations for the comparison to mean anything"
        );
        ex.cache_stats().indep_probes()
    };
    let incremental = probes(false);
    let naive = probes(true);
    assert!(
        incremental * 2 <= naive,
        "incremental must issue ≤ half the probes: {incremental} vs {naive}"
    );
}

/// Random small table in the spirit of `partition_properties.rs`: two
/// numeric columns with a correlation dial plus a nominal column, so
/// runs hit compositions, threshold stops and uncuttable attributes.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        30usize..150, // rows
        2i64..40,     // numeric domain
        1usize..5,    // categories
        0.0f64..1.0,  // correlation dial
        any::<u64>(), // seed
    )
        .prop_map(|(n, domain, cats, corr, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = charles::TableBuilder::new("t");
            b.add_column("x", charles_store::DataType::Int)
                .add_column("y", charles_store::DataType::Int)
                .add_column("k", charles_store::DataType::Str);
            for _ in 0..n {
                let x = rng.gen_range(0..domain);
                let y = if rng.gen_bool(corr) {
                    x + rng.gen_range(-2i64..=2)
                } else {
                    rng.gen_range(0..domain)
                };
                let k = format!("c{}", rng.gen_range(0..cats));
                b.push_row(vec![
                    charles::Value::Int(x),
                    charles::Value::Int(y),
                    charles::Value::Str(k),
                ])
                .unwrap();
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: for arbitrary small tables, naive and incremental
    /// HB-cuts produce identical compose traces (same pairs, same
    /// skipped pairs, same StopReason) and identical ranked output,
    /// across the memoize × median-strategy matrix and sharding.
    #[test]
    fn naive_and_incremental_traces_match(t in arb_table(), shards in 1usize..4) {
        let ctx = Query::wildcard(&["x", "y", "k"]);
        // Contexts can be degenerate (all-constant columns): both paths
        // must then fail identically too.
        for (cfg_label, cfg) in config_matrix() {
            let run = |naive: bool, backend: &dyn Backend| {
                let ex = Explorer::new(backend, cfg.clone(), ctx.clone()).unwrap();
                if naive { hb_cuts_naive(&ex) } else { hb_cuts(&ex) }
            };
            let sharded = ShardedTable::from_table(&t, shards);
            for backend in [&t as &dyn Backend, &sharded as &dyn Backend] {
                match (run(false, backend), run(true, backend)) {
                    (Ok(inc), Ok(naive)) => prop_assert_eq!(
                        run_fingerprint(&inc),
                        run_fingerprint(&naive),
                        "diverged under {}", cfg_label
                    ),
                    (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                    (a, b) => return Err(TestCaseError::fail(format!(
                        "one path failed, the other did not ({cfg_label}): {a:?} vs {b:?}"
                    ))),
                }
            }
        }
    }
}
