//! Experiment E8 — Proposition 1: `X1 ⊥ X2 ⟺ E(S1×S2) = E(S1)+E(S2)`,
//! and INDEP decreases with the degree of dependence.
//!
//! Uses the controlled-dependency generator so ground truth is known.

use charles::advisor::{cut_segmentation, indep, product_entropy, Explorer};
use charles::datagen::{correlated_pair_table, DependencyKind};
use charles::{Config, Query, Segmentation};

fn halves(ex: &Explorer<'_>, attr: &str) -> Segmentation {
    cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), attr)
        .unwrap()
        .unwrap()
}

fn measure(kind: DependencyKind, seed: u64) -> f64 {
    let t = correlated_pair_table(30_000, 64, kind, seed);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
    indep(&ex, &halves(&ex, "a"), &halves(&ex, "b")).unwrap()
}

#[test]
fn independent_attributes_reach_one() {
    let v = measure(DependencyKind::Independent, 1);
    assert!(v > 0.999, "INDEP of independent columns = {v}");
}

#[test]
fn functional_dependency_reaches_half() {
    let v = measure(DependencyKind::Functional, 2);
    assert!(
        (v - 0.5).abs() < 1e-9,
        "INDEP of b=a is exactly 1/2, got {v}"
    );
}

#[test]
fn indep_increases_monotonically_with_noise() {
    let mut last = 0.0;
    for step in 0..=10 {
        let noise = step as f64 / 10.0;
        let v = measure(DependencyKind::Noisy { noise }, 100 + step as u64);
        assert!(
            v >= last - 0.02,
            "INDEP dropped from {last} to {v} at noise {noise}"
        );
        last = v;
    }
}

#[test]
fn additivity_equality_for_independents() {
    let t = correlated_pair_table(30_000, 64, DependencyKind::Independent, 3);
    let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
    let sa = halves(&ex, "a");
    let sb = halves(&ex, "b");
    let e1 = charles::advisor::entropy(&ex, &sa).unwrap();
    let e2 = charles::advisor::entropy(&ex, &sb).unwrap();
    let e12 = product_entropy(&ex, &sa, &sb).unwrap();
    // Proposition 1 equality, up to sampling noise of the generator.
    assert!(
        (e12 - (e1 + e2)).abs() < 0.005,
        "E(S1×S2)={e12} vs E(S1)+E(S2)={}",
        e1 + e2
    );
}

#[test]
fn subadditivity_always_holds() {
    for (kind, seed) in [
        (DependencyKind::Functional, 4u64),
        (DependencyKind::Noisy { noise: 0.3 }, 5),
        (DependencyKind::Noisy { noise: 0.7 }, 6),
        (DependencyKind::Independent, 7),
    ] {
        let t = correlated_pair_table(10_000, 32, kind, seed);
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let e1 = charles::advisor::entropy(&ex, &sa).unwrap();
        let e2 = charles::advisor::entropy(&ex, &sb).unwrap();
        let e12 = product_entropy(&ex, &sa, &sb).unwrap();
        assert!(
            e12 <= e1 + e2 + 1e-9,
            "subadditivity violated for {kind:?}: {e12} > {}",
            e1 + e2
        );
        // And the product is at least as informative as either factor.
        assert!(e12 >= e1.max(e2) - 1e-9);
    }
}

#[test]
fn threshold_099_separates_the_regimes() {
    // The paper's operating point: 0.99 must pass independent pairs and
    // reject clearly dependent ones.
    let independent = measure(DependencyKind::Independent, 8);
    let dependent = measure(DependencyKind::Noisy { noise: 0.3 }, 9);
    assert!(independent >= 0.99);
    assert!(dependent < 0.99);
}
