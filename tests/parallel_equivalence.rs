//! Parallel ⇔ sequential equivalence of the advisor's hot paths.
//!
//! The `parallel` feature routes candidate-cut seeding, INDEP pair
//! evaluation, scoring and the adaptive random search through
//! `charles-parallel`'s order-preserving thread map. The contract is
//! that this is a pure execution-strategy change: **advisor output is
//! bitwise identical** — same segmentations, same ranking order, same
//! f64 score bits.
//!
//! `charles_parallel::set_num_threads(1)` routes every map through the
//! sequential branch (`items.iter().map(f).collect()` — literally the
//! code the feature-off build compiles), so one process can run both
//! paths and compare. The feature-off build itself is covered by CI's
//! `--no-default-features` test job.

use charles::advisor::{adaptive_segmentations, hb_cuts, AdaptiveOptions, Explorer};
use charles::{voc_table, weblog_table, Advisor, Config, Query, Ranked};

/// Render a ranked result list into an exactly-comparable form:
/// segmentation text plus the raw bits of every float score.
fn fingerprint(ranked: &[Ranked]) -> Vec<(String, u64, usize, usize, usize)> {
    ranked
        .iter()
        .map(|r| {
            (
                r.segmentation.to_string(),
                r.score.entropy.to_bits(),
                r.score.simplicity,
                r.score.breadth,
                r.score.depth,
            )
        })
        .collect()
}

/// `set_num_threads` is process-global and the test harness runs
/// `#[test]` fns concurrently, so every override is taken under one
/// lock — otherwise a "sequential" run could silently execute threaded
/// (vacuous comparison) or the multi-thread probe could observe 1.
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    charles_parallel::set_num_threads(n);
    let out = f();
    charles_parallel::set_num_threads(0);
    out
}

#[test]
fn machinery_actually_uses_multiple_threads() {
    // Guard against the parallel path silently degenerating to one
    // thread: a map over enough coarse items must be observed on >1
    // distinct worker thread.
    let items: Vec<u64> = (0..64).collect();
    let ids = with_threads(4, || {
        charles_parallel::par_map(&items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1 + x % 3));
            format!("{:?}", std::thread::current().id())
        })
    });
    let distinct: std::collections::BTreeSet<&String> = ids.iter().collect();
    assert!(
        distinct.len() > 1,
        "expected multiple worker threads, saw {distinct:?}"
    );
}

#[test]
fn hb_cuts_identical_with_and_without_threads() {
    let t = voc_table(8_000, 99);
    let ctx = "(type_of_boat: , tonnage: , departure_harbour: , trip: )";

    let run = || {
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str(ctx).unwrap();
        (fingerprint(&advice.ranked), format!("{:?}", advice.trace))
    };
    let (seq_rank, seq_trace) = with_threads(1, run);
    let (par_rank, par_trace) = with_threads(8, run);

    assert_eq!(seq_rank, par_rank, "ranked output diverged");
    assert_eq!(seq_trace, par_trace, "HB-cuts trace diverged");
    assert!(!seq_rank.is_empty());
}

#[test]
fn hb_cuts_identical_on_weblog_shape() {
    // A second dataset shape: more nominal columns, different cut mix.
    let t = weblog_table(6_000, 4242);
    let names = charles_store::Backend::schema(&t).names();
    let take: Vec<&str> = names.into_iter().take(4).collect();
    let ctx = Query::wildcard(&take);

    let run = || {
        let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
        let out = hb_cuts(&ex).unwrap();
        fingerprint(&out.ranked)
    };
    assert_eq!(with_threads(1, run), with_threads(8, run));
}

#[test]
fn adaptive_search_identical_with_and_without_threads() {
    let t = voc_table(4_000, 7);
    let ctx = Query::wildcard(&["type_of_boat", "tonnage", "departure_harbour"]);
    let opts = AdaptiveOptions {
        restarts: 6,
        target_depth: 6,
        ..AdaptiveOptions::default()
    };

    let run = || {
        let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
        fingerprint(&adaptive_segmentations(&ex, opts).unwrap())
    };
    let seq = with_threads(1, run);
    let par = with_threads(8, run);
    assert_eq!(seq, par, "adaptive search diverged");
    assert!(!seq.is_empty());
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Thread scheduling must not leak into results: two threaded runs
    // bit-match each other.
    let t = voc_table(5_000, 3);
    let run = || {
        let advisor = Advisor::new(&t);
        fingerprint(
            &advisor
                .advise_str("(type_of_boat: , tonnage: , trip: )")
                .unwrap()
                .ranked,
        )
    };
    let a = with_threads(8, run);
    let b = with_threads(8, run);
    assert_eq!(a, b);
}

/// Like [`with_threads`], but also overriding the small-input cutoff —
/// same lock, same reason: both knobs are process-global.
fn with_threshold<T>(threads: usize, threshold: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    charles_parallel::set_num_threads(threads);
    charles_parallel::set_par_threshold(threshold);
    let out = f();
    charles_parallel::set_par_threshold(0);
    charles_parallel::set_num_threads(0);
    out
}

#[test]
fn hb_cuts_identical_at_every_par_threshold() {
    // The sequential cutoff (inputs shorter than the threshold skip
    // thread spawn) is a pure execution-strategy switch: advisor output
    // is bitwise identical whether the cutoff is disabled (1 — the
    // pre-cutoff behaviour), at its default, or so high every fan-out
    // runs sequentially.
    let t = voc_table(6_000, 57);
    let ctx = "(type_of_boat: , tonnage: , departure_harbour: )";
    let run = || {
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str(ctx).unwrap();
        (fingerprint(&advice.ranked), format!("{:?}", advice.trace))
    };
    let reference = with_threshold(8, 1, run);
    assert!(!reference.0.is_empty());
    for threshold in [charles_parallel::DEFAULT_PAR_THRESHOLD, 16, 1 << 20] {
        let got = with_threshold(8, threshold, run);
        assert_eq!(got, reference, "threshold {threshold} diverged");
    }
}
