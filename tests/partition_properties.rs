//! Property-based tests of the core invariants, driven by proptest.
//!
//! * every operator output (CUT, COMPOSE, PRODUCT, quantile cut, HB-cuts,
//!   baselines) is a partition of its context (paper Definition 3);
//! * entropy is bounded by `ln(depth)` (Definition 4's range);
//! * INDEP lies in `[1/2, 1]` whenever both factors carry entropy;
//! * the SDL parser round-trips whatever the display prints;
//! * covers sum to 1 over any partition.

use charles::advisor::{cut_segmentation, hb_cuts, indep, quantile_cut_segmentation, Explorer};
use charles::{Config, Query, Segmentation, TableBuilder, Value};
use charles_sdl::{parse_query, parse_segmentation};
use charles_store::DataType;
use proptest::prelude::*;

/// Random small table: 2 numeric columns (one possibly correlated) and a
/// nominal column with 1–6 categories.
fn arb_table() -> impl Strategy<Value = charles::Table> {
    (
        10usize..200, // rows
        1i64..50,     // numeric domain size
        1usize..6,    // categories
        0.0f64..1.0,  // correlation dial
        any::<u64>(), // seed
    )
        .prop_map(|(n, domain, cats, corr, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = TableBuilder::new("t");
            b.add_column("x", DataType::Int)
                .add_column("y", DataType::Int)
                .add_column("k", DataType::Str);
            for _ in 0..n {
                let x = rng.gen_range(0..domain);
                let y = if rng.gen_bool(corr) {
                    x + rng.gen_range(-2i64..=2)
                } else {
                    rng.gen_range(0..domain)
                };
                let k = format!("c{}", rng.gen_range(0..cats));
                b.push_row(vec![Value::Int(x), Value::Int(y), Value::Str(k)])
                    .unwrap();
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cut_preserves_partition(t in arb_table(), attr_idx in 0usize..3) {
        let attr = ["x", "y", "k"][attr_idx];
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        if let Some(seg) = cut_segmentation(&ex, &base, attr).unwrap() {
            let report = seg.check_partition(ex.backend(), ex.context_selection()).unwrap();
            prop_assert!(report.is_partition(), "{report:?}");
            // A successful cut makes exactly two non-empty pieces.
            prop_assert_eq!(seg.depth(), 2);
            for q in seg.queries() {
                prop_assert!(ex.count(q).unwrap() > 0);
            }
        }
    }

    #[test]
    fn iterated_cuts_preserve_partition(t in arb_table(), order in proptest::sample::select(vec![
        ["x", "y", "k"], ["k", "x", "y"], ["y", "k", "x"],
    ])) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        let mut seg = Segmentation::singleton(ex.context().clone());
        for attr in order {
            if let Some(next) = cut_segmentation(&ex, &seg, attr).unwrap() {
                seg = next;
            }
        }
        let report = seg.check_partition(ex.backend(), ex.context_selection()).unwrap();
        prop_assert!(report.is_partition(), "{report:?}");
        // Covers over a partition sum to 1.
        let covers = ex.covers(&seg).unwrap();
        let total: f64 = covers.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "covers sum to {total}");
    }

    #[test]
    fn quantile_cuts_preserve_partition(t in arb_table(), k in 2usize..6) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        if let Some(seg) = quantile_cut_segmentation(&ex, &base, "x", k).unwrap() {
            let report = seg.check_partition(ex.backend(), ex.context_selection()).unwrap();
            prop_assert!(report.is_partition(), "{report:?}");
            prop_assert!(seg.depth() <= k);
        }
    }

    #[test]
    fn hb_cuts_outputs_are_partitions_with_bounded_entropy(t in arb_table()) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        match hb_cuts(&ex) {
            Ok(out) => {
                for r in &out.ranked {
                    let report = r.segmentation
                        .check_partition(ex.backend(), ex.context_selection())
                        .unwrap();
                    prop_assert!(report.is_partition(), "{report:?}");
                    let bound = (r.segmentation.depth().max(1) as f64).ln();
                    prop_assert!(r.score.entropy <= bound + 1e-9,
                        "entropy {} > ln(depth) {}", r.score.entropy, bound);
                    prop_assert!(r.score.entropy >= -1e-12);
                }
            }
            Err(charles::CoreError::NoCuttableAttribute) => {
                // Legal for degenerate tables (all columns constant).
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn indep_range_when_entropic(t in arb_table()) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        let sx = cut_segmentation(&ex, &base, "x").unwrap();
        let sy = cut_segmentation(&ex, &base, "y").unwrap();
        if let (Some(sx), Some(sy)) = (sx, sy) {
            let v = indep(&ex, &sx, &sy).unwrap();
            prop_assert!((0.0..=1.0).contains(&v), "INDEP {v} out of [0,1]");
            let e1 = charles::advisor::entropy(&ex, &sx).unwrap();
            let e2 = charles::advisor::entropy(&ex, &sy).unwrap();
            if e1 > 0.01 && e2 > 0.01 {
                // E(S1×S2) ≥ max(E1,E2) ⇒ INDEP ≥ max/(sum) ≥ … > 1/3; for
                // balanced binary cuts it is ≥ 1/2 − ε.
                prop_assert!(v >= 0.33, "INDEP {v} suspiciously low");
            }
        }
    }

    #[test]
    fn parser_round_trips_generated_queries(t in arb_table()) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        if let Ok(out) = hb_cuts(&ex) {
            let schema = ex.backend().schema();
            for r in out.ranked.iter().take(4) {
                for q in r.segmentation.queries() {
                    let printed = q.to_string();
                    let reparsed = parse_query(&printed, schema).unwrap();
                    prop_assert_eq!(q, &reparsed, "round trip failed: {}", printed);
                }
                let seg_printed = r.segmentation.to_string();
                let seg_reparsed = parse_segmentation(&seg_printed, schema).unwrap();
                prop_assert_eq!(&r.segmentation, &seg_reparsed);
            }
        }
    }

    #[test]
    fn sql_emission_never_panics_and_is_nonempty(t in arb_table()) {
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y", "k"])).unwrap();
        if let Ok(out) = hb_cuts(&ex) {
            for r in out.ranked.iter().take(3) {
                for stmt in charles_sdl::segmentation_to_sql(&r.segmentation, "t") {
                    prop_assert!(stmt.starts_with("SELECT COUNT(*) FROM t WHERE "));
                    prop_assert!(stmt.ends_with(';'));
                }
            }
        }
    }
}
