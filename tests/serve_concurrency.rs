//! Multi-session concurrency harness for the serving layer (the
//! ROADMAP's "many advisors over one shared backend" item).
//!
//! The server is spun up on an ephemeral port over one shared
//! [`ShardedTable`]; ≥ 8 client threads then drive interleaved
//! start / inspect / drill / back / error / delete traffic against it.
//! Three things are pinned:
//!
//! 1. **Oracle equality** — every served advice payload is bitwise
//!    equal to a direct single-threaded `Advisor::advise` run on the
//!    same backend (the canonical context, encoded with the same JSON
//!    encoder), regardless of interleaving or cache state.
//! 2. **Shared-cache sharing** — identical contexts across sessions
//!    trigger exactly one advisor computation: the cache's `runs`
//!    counter equals the number of *distinct* canonical contexts the
//!    whole swarm touched.
//! 3. **Protocol sanity under load** — stable 4xx answers for
//!    out-of-range drills, back-at-root, bad SDL and dead sessions,
//!    interleaved with the happy paths.
//!
//! `CHARLES_SHARDS=n` overrides the backend shard count (CI smoke runs
//! it with 7, deliberately unaligned with the 64-bit bitmap words).

use charles::serve::http_request;
use charles::serve::json::encode_advice;
use charles::serve::wire::{wire_request, WireClient, WireRequest, WireResponse};
use charles::{Advisor, Backend, Query, ServeConfig, Server, ShardedTable};
use std::collections::HashSet;
use std::sync::{Arc, Barrier};

const CLIENT_THREADS: usize = 10;
const ITERATIONS: usize = 2;

fn shard_count() -> usize {
    std::env::var("CHARLES_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// The four canonical contexts the swarm explores, each with a permuted
/// spelling — equivalent under canonicalization, so sessions using
/// either spelling must share one cache entry.
fn context_pool() -> Vec<[&'static str; 2]> {
    vec![
        [
            "(type_of_boat: , tonnage: , departure_harbour: )",
            "(departure_harbour: , type_of_boat: , tonnage: )",
        ],
        ["(tonnage: , trip: )", "(trip: ,   tonnage: )"],
        ["(type_of_boat: , built: )", "(built: ,type_of_boat: )"],
        [
            "(departure_harbour: , tonnage: , trip: )",
            "(trip: , departure_harbour: , tonnage: )",
        ],
    ]
}

struct Oracle {
    /// Expected advice JSON for the root context.
    root_json: String,
    /// Expected advice JSON after drilling (0, 0).
    drill_json: String,
    /// Canonical renderings for the breadcrumb assertions.
    root_crumb: String,
    drill_crumb: String,
}

/// Run the single-threaded oracle: direct `Advisor::advise` calls on
/// the canonical contexts, no server, no cache.
fn oracle(backend: &dyn Backend, sdl: &str, distinct: &mut HashSet<String>) -> Oracle {
    let advisor = Advisor::new(backend);
    let root_ctx: Query = charles::parse_query(sdl, backend.schema())
        .expect("pool contexts are valid")
        .canonicalized();
    distinct.insert(root_ctx.cache_key());
    let root = advisor.advise(root_ctx.clone()).expect("root advises");
    let target = root
        .segment(0, 0)
        .expect("pool contexts have a drillable first segment")
        .clone()
        .canonicalized();
    distinct.insert(target.cache_key());
    let drill = advisor.advise(target.clone()).expect("target advises");
    Oracle {
        root_json: encode_advice(&root),
        drill_json: encode_advice(&drill),
        root_crumb: root_ctx.to_string(),
        drill_crumb: target.to_string(),
    }
}

/// One client's full lifecycle against the server; returns the number
/// of advise-path requests it made (start + drill per iteration).
fn client_script(addr: std::net::SocketAddr, spelling: &str, oracle: &Oracle) -> usize {
    let mut advised = 0;
    for _ in 0..ITERATIONS {
        // Start a session; the served advice must equal the oracle's.
        let (status, body) = http_request(addr, "POST", "/session", spelling).unwrap();
        assert_eq!(status, 201, "start failed: {body}");
        let id = body
            .strip_prefix("{\"session\":\"")
            .and_then(|rest| rest.split_once('"'))
            .map(|(id, _)| id.to_string())
            .unwrap_or_else(|| panic!("no session id in {body}"));
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.root_json),
            "served root advice differs from the direct advisor oracle"
        );
        advised += 1;

        // Bad SDL and bad drill bodies answer 4xx without advising:
        // unknown attributes are a 422 admission rejection (static
        // analysis), unparseable bodies stay 400.
        let (status, err) = http_request(addr, "POST", "/session", "(no_such_column: )").unwrap();
        assert_eq!(status, 422, "{err}");
        assert!(err.contains("\"code\":\"invalid_context\""), "{err}");
        let (status, _) = http_request(addr, "POST", "/session", "not sdl at all").unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(addr, "POST", &format!("/session/{id}/drill"), "zero one").unwrap();
        assert_eq!(status, 400);

        // Inspect: depth 1, canonical breadcrumb, same advice bytes.
        let (status, info) = http_request(addr, "GET", &format!("/session/{id}"), "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            info,
            format!(
                "{{\"session\":\"{id}\",\"depth\":1,\"breadcrumbs\":[{}],\"advice\":{}}}",
                charles::serve::json::json_string(&oracle.root_crumb),
                oracle.root_json
            )
        );

        // Out-of-range drill: stable 422, session state untouched.
        let (status, err) =
            http_request(addr, "POST", &format!("/session/{id}/drill"), "99 424242").unwrap();
        assert_eq!(status, 422, "{err}");
        assert!(err.contains("(99, 424242)"), "{err}");

        // Back at root: stable 422.
        let (status, err) = http_request(addr, "POST", &format!("/session/{id}/back"), "").unwrap();
        assert_eq!(status, 422, "{err}");

        // Drill (0, 0): byte-equal to the oracle's drilled advice.
        let (status, body) =
            http_request(addr, "POST", &format!("/session/{id}/drill"), "0 0").unwrap();
        assert_eq!(status, 200, "drill failed: {body}");
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.drill_json),
            "served drilled advice differs from the direct advisor oracle"
        );
        advised += 1;

        // Breadcrumbs now two deep, both canonical.
        let (status, info) = http_request(addr, "GET", &format!("/session/{id}"), "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            info,
            format!(
                "{{\"session\":\"{id}\",\"depth\":2,\"breadcrumbs\":[{},{}],\"advice\":{}}}",
                charles::serve::json::json_string(&oracle.root_crumb),
                charles::serve::json::json_string(&oracle.drill_crumb),
                oracle.drill_json
            )
        );

        // Back out: the root advice again, bit for bit.
        let (status, body) =
            http_request(addr, "POST", &format!("/session/{id}/back"), "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.root_json)
        );

        // Delete; the id is then gone for every verb.
        let (status, body) = http_request(addr, "DELETE", &format!("/session/{id}"), "").unwrap();
        assert_eq!(status, 204, "{body}");
        let (status, _) = http_request(addr, "GET", &format!("/session/{id}"), "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(addr, "DELETE", &format!("/session/{id}"), "").unwrap();
        assert_eq!(status, 404);
    }
    advised
}

/// The binary-listener mirror of [`client_script`]: the same lifecycle
/// over wire frames, every response rendered back to HTTP form via
/// [`WireResponse::to_http`] and asserted byte-equal against the same
/// oracle strings the HTTP clients use. (The one HTTP-only step —
/// the unparseable `"zero one"` drill body — has no wire analogue:
/// drill indices are typed fields there and cannot be malformed.)
fn wire_client_script(addr: std::net::SocketAddr, spelling: &str, oracle: &Oracle) -> usize {
    let mut client = WireClient::new(addr);
    let mut advised = 0;
    for _ in 0..ITERATIONS {
        // Start a session; the served advice must equal the oracle's.
        let resp = client
            .request(&WireRequest::Start { body: spelling })
            .unwrap();
        let WireResponse::Started { id, .. } = &resp else {
            panic!("start failed: {resp:?}");
        };
        let id = id.clone();
        let (status, body) = resp.to_http();
        assert_eq!(status, 201, "start failed: {body}");
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.root_json),
            "served root advice differs from the direct advisor oracle (binary listener)"
        );
        advised += 1;

        // Bad SDL answers the same 4xx codes and bodies as HTTP.
        let (status, err) = client
            .request(&WireRequest::Start {
                body: "(no_such_column: )",
            })
            .unwrap()
            .to_http();
        assert_eq!(status, 422, "{err}");
        assert!(err.contains("\"code\":\"invalid_context\""), "{err}");
        let (status, _) = client
            .request(&WireRequest::Start {
                body: "not sdl at all",
            })
            .unwrap()
            .to_http();
        assert_eq!(status, 400);

        // Inspect: depth 1, canonical breadcrumb, same advice bytes.
        let (status, info) = client
            .request(&WireRequest::Inspect { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 200);
        assert_eq!(
            info,
            format!(
                "{{\"session\":\"{id}\",\"depth\":1,\"breadcrumbs\":[{}],\"advice\":{}}}",
                charles::serve::json::json_string(&oracle.root_crumb),
                oracle.root_json
            )
        );

        // Out-of-range drill: stable 422, session state untouched.
        let (status, err) = client
            .request(&WireRequest::Drill {
                id: &id,
                rank: 99,
                seg: 424242,
            })
            .unwrap()
            .to_http();
        assert_eq!(status, 422, "{err}");
        assert!(err.contains("(99, 424242)"), "{err}");

        // Back at root: stable 422.
        let (status, err) = client
            .request(&WireRequest::Back { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 422, "{err}");

        // Drill (0, 0): byte-equal to the oracle's drilled advice.
        let (status, body) = client
            .request(&WireRequest::Drill {
                id: &id,
                rank: 0,
                seg: 0,
            })
            .unwrap()
            .to_http();
        assert_eq!(status, 200, "drill failed: {body}");
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.drill_json),
            "served drilled advice differs from the direct advisor oracle (binary listener)"
        );
        advised += 1;

        // Breadcrumbs now two deep, both canonical.
        let (status, info) = client
            .request(&WireRequest::Inspect { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 200);
        assert_eq!(
            info,
            format!(
                "{{\"session\":\"{id}\",\"depth\":2,\"breadcrumbs\":[{},{}],\"advice\":{}}}",
                charles::serve::json::json_string(&oracle.root_crumb),
                charles::serve::json::json_string(&oracle.drill_crumb),
                oracle.drill_json
            )
        );

        // Back out: the root advice again, bit for bit.
        let (status, body) = client
            .request(&WireRequest::Back { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 200);
        assert_eq!(
            body,
            format!("{{\"session\":\"{id}\",\"advice\":{}}}", oracle.root_json)
        );

        // Delete; the id is then gone for every verb.
        let (status, body) = client
            .request(&WireRequest::Delete { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 204, "{body}");
        assert_eq!(body, "");
        let (status, _) = client
            .request(&WireRequest::Inspect { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 404);
        let (status, _) = client
            .request(&WireRequest::Delete { id: &id })
            .unwrap()
            .to_http();
        assert_eq!(status, 404);
    }
    advised
}

#[test]
fn concurrent_sessions_serve_oracle_bytes_and_share_one_cache() {
    let shards = shard_count();
    let table = charles::voc_table(600, 42);
    let sharded = ShardedTable::from_table(&table, shards);

    // Single-threaded oracle over the very same sharded backend.
    let mut distinct = HashSet::new();
    let oracles: Vec<Oracle> = context_pool()
        .iter()
        .map(|spellings| oracle(&sharded, spellings[0], &mut distinct))
        .collect();

    let backend: Arc<dyn Backend> = Arc::new(sharded);
    let server = Server::bind(
        "127.0.0.1:0",
        backend,
        ServeConfig {
            workers: 8,
            cache_shards: 5,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .with_wire_listener("127.0.0.1:0")
    .expect("bind wire listener");
    let addr = server.local_addr().unwrap();
    let wire_addr = server.wire_addr().expect("wire listener bound");
    let cache = server.cache();
    let handle = server.spawn().expect("spawn server");

    // ≥ 8 clients, all released at once for maximal interleaving. Each
    // uses one of the four contexts, alternating between the canonical
    // and the permuted spelling — and between the HTTP and binary
    // listeners, so both protocols race each other over the one cache
    // and must serve the same oracle bytes.
    let pool = context_pool();
    let barrier = Arc::new(Barrier::new(CLIENT_THREADS));
    let advised: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENT_THREADS {
            let spellings = pool[t % pool.len()];
            let spelling = spellings[t % 2];
            let oracle = &oracles[t % pool.len()];
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                barrier.wait();
                if t % 2 == 0 {
                    client_script(addr, spelling, oracle)
                } else {
                    wire_client_script(wire_addr, spelling, oracle)
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });

    // The cache proves the sharing: every advise-path request hit the
    // cache exactly once, and the advisor ran exactly once per distinct
    // canonical context — duplicates across sessions, spellings,
    // iterations and threads were all served from the shared entries.
    let stats = cache.stats();
    assert_eq!(
        advised,
        CLIENT_THREADS * ITERATIONS * 2,
        "each client advises twice per iteration"
    );
    assert_eq!(
        stats.hits + stats.misses,
        advised as u64,
        "every advise-path request goes through the cache"
    );
    assert_eq!(
        stats.runs,
        distinct.len() as u64,
        "identical contexts across sessions must share one advisor run \
         (distinct canonical contexts: {distinct:?})"
    );
    assert!(
        stats.misses >= stats.runs,
        "a miss either ran the advisor or blocked on the flight that did: {stats:?}"
    );

    // The HTTP view of the same counters agrees. (Capacity reports the
    // effective per-shard-rounded bound; no eviction can have happened
    // with this few distinct contexts.)
    let (status, body) = http_request(addr, "GET", "/cache/stats", "").unwrap();
    assert_eq!(status, 200);
    let capacity = cache.capacity().expect("server caches are bounded");
    assert_eq!(
        body,
        format!(
            "{{\"hits\":{},\"misses\":{},\"runs\":{},\"evictions\":0,\"entries\":{},\"capacity\":{}}}",
            stats.hits,
            stats.misses,
            stats.runs,
            distinct.len(),
            capacity
        )
    );

    // And the binary listener's view of the same counters renders to
    // the very same HTTP bytes (stats queries don't touch the advice
    // cache, so the counters are stable between the two reads).
    let (wire_status, wire_body) = wire_request(wire_addr, &WireRequest::CacheStats)
        .expect("wire cache-stats")
        .to_http();
    assert_eq!(wire_status, status);
    assert_eq!(wire_body, body);

    handle.shutdown();
}

/// Pipelining: many frames written in one burst are answered in request
/// order, each response byte-equal to what sequential requests produce.
#[test]
fn pipelined_wire_frames_answer_in_order() {
    use charles::serve::wire::WireConn;
    use charles::serve::ClientConfig;

    let table = charles::voc_table(400, 7);
    let sharded = ShardedTable::from_table(&table, shard_count());
    let backend: Arc<dyn Backend> = Arc::new(sharded);
    let server = Server::bind("127.0.0.1:0", backend, ServeConfig::default())
        .unwrap()
        .with_wire_listener("127.0.0.1:0")
        .unwrap();
    let wire_addr = server.wire_addr().unwrap();
    let handle = server.spawn().unwrap();

    let mut conn = WireConn::connect(&wire_addr, &ClientConfig::default()).unwrap();

    // Burst 1: start a session, then immediately pipeline inspects,
    // an out-of-range drill, a real drill and a back behind it —
    // without reading a single response first. The session id is
    // assigned server-side, so the lifecycle ops name the id the
    // start *will* produce: ids are deterministic ("s1" first).
    conn.stage(&WireRequest::Start {
        body: "(master: , tonnage: )",
    });
    conn.stage(&WireRequest::Inspect { id: "s1" });
    conn.stage(&WireRequest::Drill {
        id: "s1",
        rank: 99,
        seg: 424242,
    });
    conn.stage(&WireRequest::Drill {
        id: "s1",
        rank: 0,
        seg: 0,
    });
    conn.stage(&WireRequest::Back { id: "s1" });
    conn.stage(&WireRequest::Delete { id: "s1" });
    conn.stage(&WireRequest::Health);
    conn.flush().unwrap();

    let started = conn.recv().unwrap();
    let WireResponse::Started { id, advice } = &started else {
        panic!("expected Started, got {started:?}");
    };
    assert_eq!(id, "s1", "first session id is deterministic");
    let root_json = advice.to_json();

    let info = conn.recv().unwrap();
    let WireResponse::Info { depth, advice, .. } = &info else {
        panic!("expected Info, got {info:?}");
    };
    assert_eq!(*depth, 1);
    assert_eq!(advice.to_json(), root_json, "inspect echoes root advice");

    let bad = conn.recv().unwrap();
    assert_eq!(bad.status(), 422, "out-of-range drill: {bad:?}");

    let drilled = conn.recv().unwrap();
    let WireResponse::Advice { advice, .. } = &drilled else {
        panic!("expected Advice, got {drilled:?}");
    };
    let drill_json = advice.to_json();
    assert_ne!(drill_json, root_json, "drill changes the context");

    let back = conn.recv().unwrap();
    let WireResponse::Advice { advice, .. } = &back else {
        panic!("expected Advice, got {back:?}");
    };
    assert_eq!(advice.to_json(), root_json, "back restores root bytes");

    assert_eq!(conn.recv().unwrap().status(), 204, "delete");
    assert_eq!(conn.recv().unwrap().status(), 200, "health");

    handle.shutdown();
}

/// The cache must also be *correct* under contention when many threads
/// race the very same brand-new context: single-flight, one run.
#[test]
fn racing_identical_contexts_compute_once() {
    let table = charles::voc_table(400, 7);
    let sharded = ShardedTable::from_table(&table, shard_count());
    let backend: Arc<dyn Backend> = Arc::new(sharded);
    let server = Server::bind("127.0.0.1:0", backend, ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let cache = server.cache();
    let handle = server.spawn().unwrap();

    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let barrier = Arc::clone(&barrier);
            // Both spellings of one context, hitting the cold cache at
            // the same instant.
            let sdl = if t % 2 == 0 {
                "(master: , tonnage: )"
            } else {
                "(tonnage: , master: )"
            };
            handles.push(scope.spawn(move || {
                barrier.wait();
                let (status, body) = http_request(addr, "POST", "/session", sdl).unwrap();
                assert_eq!(status, 201, "{body}");
                // Strip the per-session id: the advice bytes must agree.
                body.split_once(",\"advice\":").unwrap().1.to_string()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        cache.stats().runs,
        1,
        "one run for {threads} racing sessions"
    );
    for w in bodies.windows(2) {
        assert_eq!(w[0], w[1], "all racers must be served identical bytes");
    }
    handle.shutdown();
}
