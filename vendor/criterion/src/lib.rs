//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this shim keeps
//! the bench targets compiling and runnable: it mirrors the structural
//! API the Charles benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, the two macros)
//! and implements measurement as a plain wall-clock sampling loop with
//! a text report — no statistics, plots, or HTML.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass, then `samples` timed passes.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.last_mean);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, b.last_mean);
        self
    }

    fn report(&self, id: &BenchmarkId, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: {mean}{rate}",
            group = self.name,
            id = id.id,
            mean = fmt_duration(mean),
        );
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them the way real criterion does.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut ran = 0;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        assert!(ran >= 3);
        g.bench_with_input(BenchmarkId::new("g", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
