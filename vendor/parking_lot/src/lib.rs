//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Only the surface Charles uses is provided: [`Mutex`] and [`RwLock`]
//! whose guards are obtained without a poisoning `Result`. Poisoning is
//! translated into a panic propagation, which matches `parking_lot`'s
//! behaviour closely enough for this workspace (a poisoned lock means a
//! panic already unwound through a critical section).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
