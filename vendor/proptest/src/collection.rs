//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Sizes accepted by collection strategies: a fixed length or a range.
pub trait IntoSizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.0.gen_range(self.clone())
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: IntoSizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set below target; bounded retries keep
        // generation total even over tiny domains.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// `proptest::collection::btree_set(element, size)`.
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: IntoSizeRange,
{
    BTreeSetStrategy { element, size }
}
