//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of proptest that the Charles test suites use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / collection /
//! option / sample strategies, a tiny character-class regex generator
//! for string strategies, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its seed instead;
//! * cases are generated from a deterministic per-test seed sweep, so
//!   failures are reproducible across runs and machines;
//! * regression seeds are replayed from
//!   `<crate>/proptest-regressions/<file-stem>.txt`, one `seed = N`
//!   line per entry (a simplified version of proptest's format).

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod option;
pub mod sample;
pub mod string;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), lhs, rhs),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declare property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, mut v in proptest::collection::vec(any::<bool>(), 10)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &cfg,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__proptest_rng| {
                    $crate::proptest!(@bind __proptest_rng, $($params)*);
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, mut $id:ident in $strategy:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $id = $crate::strategy::Strategy::new_value(&($strategy), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, mut $id:ident in $strategy:expr) => {
        $crate::proptest!(@bind $rng, mut $id in $strategy,);
    };
    (@bind $rng:ident, $id:ident in $strategy:expr, $($rest:tt)*) => {
        let $id = $crate::strategy::Strategy::new_value(&($strategy), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $id:ident in $strategy:expr) => {
        $crate::proptest!(@bind $rng, $id in $strategy,);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
