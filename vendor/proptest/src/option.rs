//! `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.0.gen_bool(0.75) {
            Some(self.0.new_value(rng))
        } else {
            None
        }
    }
}

/// Yields `Some(value)` most of the time and `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
