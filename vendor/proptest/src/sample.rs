//! `proptest::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.0.len());
        self.0[idx].clone()
    }
}

/// Pick uniformly from a non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select(options)
}
