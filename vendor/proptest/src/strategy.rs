//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of one type from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply generates a fresh value per case, and failures are replayed
/// by seed.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several magnitudes.
        let mag = rng.0.gen::<f64>() * 1e9;
        if rng.0.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
