//! Tiny regex-subset generator backing `&str` strategies.
//!
//! Supports what the suites use — character classes with ranges
//! (`[ -~]`, `[a-z0-9_]`), literals, escapes, and the quantifiers
//! `{n}`, `{m,n}`, `?`, `*`, `+` (starred forms capped at 8 reps).
//! Anything outside this subset panics with a clear message so a
//! future suite extension fails loudly instead of generating wrong
//! data.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                if chars.peek() == Some(&'^') {
                    panic!("proptest shim: negated classes unsupported in {pattern:?}");
                }
                loop {
                    let Some(lo) = chars.next() else {
                        panic!("proptest shim: unterminated class in {pattern:?}");
                    };
                    if lo == ']' {
                        break;
                    }
                    let lo = if lo == '\\' {
                        chars.next().expect("escape")
                    } else {
                        lo
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                // trailing '-' is a literal
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(&hi) => {
                                chars.next();
                                assert!(lo <= hi, "bad class range in {pattern:?}");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("escape")),
            '.' | '(' | ')' | '|' => {
                panic!("proptest shim: regex feature {c:?} unsupported in {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    body.push(d);
                }
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn emit(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.0.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("valid char"));
                    return;
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let reps = rng.0.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            emit(&piece.atom, rng, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = generate("[ -~]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        let s = generate("[a-c]{2,4}", &mut rng);
        assert!((2..=4).contains(&s.len()));
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
