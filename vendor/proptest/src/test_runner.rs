//! Case runner: deterministic seed sweep plus regression-seed replay.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// RNG handed to strategies. Wraps the vendored `rand` StdRng.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// A failed case (no panicking inside the body: the runner reports the
/// seed, then panics once with full context).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; mirrors the fields of proptest's config that
/// the suites set.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, for a stable per-test base seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parse `seed = N` lines; `#` starts a comment.
fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            let rest = line.strip_prefix("seed")?.trim_start().strip_prefix('=')?;
            rest.trim().parse::<u64>().ok()
        })
        .collect()
}

/// Run one property over its regression seeds and a deterministic sweep.
pub fn run<F>(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut body: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = fnv1a(format!("{source_file}::{test_name}").as_bytes());
    let reg_path = regression_path(manifest_dir, source_file);

    let replay = regression_seeds(&reg_path);
    let sweep = (0..cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));

    for (origin, seed) in replay
        .iter()
        .map(|&s| ("regression", s))
        .chain(sweep.map(|s| ("sweep", s)))
    {
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case failed ({origin} seed {seed})\n\
                 {msg}\n\
                 To replay this exact case, add the line below to {path}:\n\
                 seed = {seed}",
                msg = e.message(),
                path = reg_path.display(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_and_comments_ignored() {
        let dir = std::env::temp_dir().join("proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.txt");
        std::fs::write(&p, "# comment\nseed = 42\nseed=7 # trailing\nnoise\n").unwrap();
        assert_eq!(regression_seeds(&p), vec![42, 7]);
    }

    #[test]
    fn runner_sweeps_deterministically() {
        let cfg = ProptestConfig::with_cases(5);
        let mut seen = Vec::new();
        run(&cfg, "/nonexistent", "f.rs", "t", |rng| {
            seen.push(rand::Rng::gen_range(&mut rng.0, 0u64..1000));
            Ok(())
        });
        let mut second = Vec::new();
        run(&cfg, "/nonexistent", "f.rs", "t", |rng| {
            second.push(rand::Rng::gen_range(&mut rng.0, 0u64..1000));
            Ok(())
        });
        assert_eq!(seen, second);
        assert_eq!(seen.len(), 5);
    }
}
