//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` 0.8 that Charles actually uses:
//! [`Rng::gen_range`], [`Rng::gen`], [`Rng::gen_bool`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`thread_rng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for data generation
//! and randomized search, and fully deterministic under
//! [`SeedableRng::seed_from_u64`].

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] accepts, yielding a `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Non-deterministic generator handle returned by [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh, time-and-thread seeded generator (mirrors `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = nanos ^ n.rotate_left(32) ^ 0xA076_1D64_78BD_642F;
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
